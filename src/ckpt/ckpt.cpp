#include "ckpt/ckpt.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/crc32c.hpp"
#include "obs/obs.hpp"

namespace npb::ckpt {
namespace {

constexpr unsigned char kMagic[8] = {'N', 'P', 'B', 'C', 'K', 'P', 'T', '1'};
// Hostile-input caps: real checkpoints name one benchmark (<= 8 chars) and
// carry a handful of spans.
constexpr std::uint32_t kMaxNameLen = 64;
constexpr std::uint32_t kMaxSpans = 1024;

std::atomic<bool> g_interrupt{false};

void record_obs(int id, double value) {
  if (obs::kActive && obs::ObsRegistry::instance().enabled())
    obs::ObsRegistry::instance().record(id, -1, value);
}

void put_bytes(std::vector<unsigned char>& out, const void* p, std::size_t n) {
  if (n == 0) return;
  const auto* b = static_cast<const unsigned char*>(p);
  out.insert(out.end(), b, b + n);
}

template <class T>
void put(std::vector<unsigned char>& out, T v) {
  put_bytes(out, &v, sizeof v);
}

/// Bounds-checked sequential reader over the raw image: a corrupted length
/// field can shorten any later read, so every read names what it was after
/// and throws CkptError instead of running off the buffer.
struct Reader {
  const std::vector<unsigned char>& b;
  std::size_t at = 0;

  void need(std::size_t n, const char* what) const {
    if (at > b.size() || b.size() - at < n)
      throw CkptError(std::string("checkpoint truncated reading ") + what);
  }
  template <class T>
  T get(const char* what) {
    need(sizeof(T), what);
    T v;
    std::memcpy(&v, b.data() + at, sizeof v);
    at += sizeof v;
    return v;
  }
  std::string get_string(std::size_t n, const char* what) {
    need(n, what);
    std::string s(reinterpret_cast<const char*>(b.data() + at), n);
    at += n;
    return s;
  }
};

std::vector<unsigned char> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw CkptError("cannot open checkpoint '" + path +
                    "': " + std::strerror(errno));
  std::vector<unsigned char> bytes;
  unsigned char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      throw CkptError("error reading checkpoint '" + path +
                      "': " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

void write_all(int fd, const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw CkptError("error writing checkpoint '" + path +
                      "': " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_dir(const std::string& dir) {
  // Best effort: the rename itself is what makes the commit atomic; the
  // directory fsync makes it durable across power loss where supported.
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void request_interrupt() noexcept {
  g_interrupt.store(true, std::memory_order_relaxed);
}
bool interrupt_requested() noexcept {
  return g_interrupt.load(std::memory_order_relaxed);
}
void clear_interrupt() noexcept {
  g_interrupt.store(false, std::memory_order_relaxed);
}

std::vector<unsigned char> encode(const Meta& meta, long step,
                                  const std::vector<SpanView>& spans) {
  std::vector<unsigned char> out;
  std::size_t payload_bytes = 0;
  for (const SpanView& s : spans) payload_bytes += s.bytes;
  out.reserve(64 + meta.benchmark.size() + 8 * spans.size() + payload_bytes);

  put_bytes(out, kMagic, sizeof kMagic);
  put<std::uint32_t>(out, kFormatVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(meta.benchmark.size()));
  put_bytes(out, meta.benchmark.data(), meta.benchmark.size());
  put<std::uint8_t>(out, static_cast<std::uint8_t>(meta.cls));
  put<std::uint8_t>(out, meta.mode);
  put<std::uint8_t>(out, meta.runtime);
  put<std::uint8_t>(out, 0);  // pad
  put<std::int32_t>(out, meta.threads);
  put<std::int64_t>(out, static_cast<std::int64_t>(step));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(spans.size()));
  for (const SpanView& s : spans)
    put<std::uint64_t>(out, static_cast<std::uint64_t>(s.bytes));
  put<std::uint32_t>(out, crc::crc32c(out.data(), out.size()));

  std::uint32_t payload_crc = 0;
  for (const SpanView& s : spans) {
    put_bytes(out, s.data, s.bytes);
    payload_crc = crc::crc32c(s.data, s.bytes, payload_crc);
  }
  put<std::uint32_t>(out, payload_crc);
  return out;
}

long decode(const std::vector<unsigned char>& bytes, const Meta& expected,
            const std::vector<MutSpanView>* restore) {
  Reader r{bytes};

  r.need(sizeof kMagic, "magic");
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw CkptError("checkpoint magic mismatch: not a checkpoint file");
  r.at = sizeof kMagic;

  const auto version = r.get<std::uint32_t>("version");
  if (version != kFormatVersion)
    throw CkptError("checkpoint format version " + std::to_string(version) +
                    " unsupported (this build reads version " +
                    std::to_string(kFormatVersion) + ")");

  const auto name_len = r.get<std::uint32_t>("benchmark name length");
  if (name_len > kMaxNameLen)
    throw CkptError("checkpoint benchmark name length " +
                    std::to_string(name_len) + " implausible (corrupt header)");
  const std::string benchmark = r.get_string(name_len, "benchmark name");
  const auto cls = static_cast<char>(r.get<std::uint8_t>("class"));
  const auto mode = r.get<std::uint8_t>("mode");
  const auto runtime = r.get<std::uint8_t>("runtime");
  r.get<std::uint8_t>("pad");
  const auto threads = r.get<std::int32_t>("threads");
  const auto step = static_cast<long>(r.get<std::int64_t>("step"));
  const auto nspans = r.get<std::uint32_t>("span count");
  if (nspans > kMaxSpans)
    throw CkptError("checkpoint span count " + std::to_string(nspans) +
                    " implausible (corrupt header)");
  std::vector<std::uint64_t> span_bytes(nspans);
  for (std::uint64_t& n : span_bytes) n = r.get<std::uint64_t>("span size");

  const std::size_t header_end = r.at;
  const auto header_crc = r.get<std::uint32_t>("header CRC");
  if (header_crc != crc::crc32c(bytes.data(), header_end))
    throw CkptError("checkpoint header CRC mismatch (corrupt header)");

  // Identity checks: every mismatch is fatal and named, so a checkpoint can
  // never restore into a run it was not taken from.
  if (benchmark != expected.benchmark)
    throw CkptError("checkpoint is for benchmark '" + benchmark +
                    "', not '" + expected.benchmark + "'");
  if (cls != expected.cls)
    throw CkptError(std::string("checkpoint is for class '") + cls +
                    "', not '" + expected.cls + "'");
  if (mode != expected.mode)
    throw CkptError("checkpoint mode " + std::to_string(mode) +
                    " does not match the running mode " +
                    std::to_string(expected.mode));
  if (runtime != expected.runtime)
    throw CkptError("checkpoint runtime " + std::to_string(runtime) +
                    " does not match the running runtime " +
                    std::to_string(expected.runtime));
  if (threads != expected.threads)
    throw CkptError("checkpoint was taken at width " + std::to_string(threads) +
                    ", not the configured --threads=" +
                    std::to_string(expected.threads));
  if (restore != nullptr) {
    if (span_bytes.size() != restore->size())
      throw CkptError("checkpoint carries " +
                      std::to_string(span_bytes.size()) + " spans, this run " +
                      "registered " + std::to_string(restore->size()));
    for (std::size_t i = 0; i < span_bytes.size(); ++i)
      if (span_bytes[i] != (*restore)[i].bytes)
        throw CkptError("checkpoint span " + std::to_string(i) + " is " +
                        std::to_string(span_bytes[i]) + " bytes, this run's " +
                        "is " + std::to_string((*restore)[i].bytes));
  }

  std::size_t payload_bytes = 0;
  for (const std::uint64_t n : span_bytes) {
    if (n > bytes.size())  // overflow-proof: one span cannot exceed the file
      throw CkptError("checkpoint span size implausible (corrupt header)");
    payload_bytes += n;
  }
  const std::size_t payload_at = r.at;
  r.need(payload_bytes, "payload");
  r.at += payload_bytes;
  const auto payload_crc = r.get<std::uint32_t>("payload CRC");
  if (r.at != bytes.size())
    throw CkptError("checkpoint has trailing bytes after the payload CRC");
  if (payload_crc != crc::crc32c(bytes.data() + payload_at, payload_bytes))
    throw CkptError("checkpoint payload CRC mismatch (corrupt payload)");

  if (restore != nullptr) {
    std::size_t at = payload_at;
    for (const MutSpanView& s : *restore) {
      std::memcpy(s.data, bytes.data() + at, s.bytes);
      at += s.bytes;
    }
  }
  return step;
}

Session::Session(Meta meta, const CkptOptions& opts)
    : meta_(std::move(meta)), opts_(opts) {
  if (!opts_.dir.empty()) {
    // One level of mkdir, so `--ckpt-dir=ck` just works in CI scripts.
    if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST)
      throw CkptError("cannot create checkpoint directory '" + opts_.dir +
                      "': " + std::strerror(errno));
    save_path_ = opts_.dir + "/" + meta_.benchmark + "-" + meta_.cls + ".ckpt";
  }
  if (opts_.resume) {
    load_path_ = opts_.resume_path.empty() ? save_path_ : opts_.resume_path;
    if (load_path_.empty())
      throw CkptError("--resume needs --ckpt-dir or an explicit path");
    resume_pending_ = true;
  }
}

long Session::consume_resume(const std::vector<MutSpanView>& spans) {
  if (!resume_pending_)
    throw CkptError("no resume pending on this checkpoint session");
  resume_pending_ = false;
  const std::vector<unsigned char> bytes = read_file(load_path_);
  const long step = decode(bytes, meta_, &spans);
  record_obs(obs::kRegionCkptRestored, static_cast<double>(step));
  return step;
}

bool Session::flush(long step, const std::vector<SpanView>& spans,
                    bool inject_corrupt) {
  if (!can_save()) return true;
  std::vector<unsigned char> bytes = encode(meta_, step, spans);
  if (inject_corrupt) {
    // The ckpt:corrupt fault: one payload bit flips after the CRCs are
    // computed — exactly what a medium error between serialize and commit
    // looks like.  The readback verification below must catch it.
    std::size_t payload_bytes = 0;
    for (const SpanView& s : spans) payload_bytes += s.bytes;
    if (payload_bytes > 0)
      bytes[bytes.size() - sizeof(std::uint32_t) - payload_bytes +
            payload_bytes / 2] ^= 0x10;
  }

  const std::string tmp = save_path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw CkptError("cannot create checkpoint temp file '" + tmp +
                    "': " + std::strerror(errno));
  try {
    write_all(fd, tmp, bytes);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    throw CkptError("fsync failed on checkpoint temp file '" + tmp +
                    "': " + std::strerror(err));
  }
  ::close(fd);

  // Readback verification before the rename: the previous good checkpoint
  // is only replaced by a file that re-validates end to end.
  try {
    decode(read_file(tmp), meta_, nullptr);
  } catch (const CkptError&) {
    ::unlink(tmp.c_str());
    record_obs(obs::kRegionCkptCrcFail, 1.0);
    return false;
  }

  if (::rename(tmp.c_str(), save_path_.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw CkptError("cannot commit checkpoint '" + save_path_ +
                    "': " + std::strerror(err));
  }
  fsync_dir(opts_.dir);
  record_obs(obs::kRegionCkptSaved, 1.0);
  return true;
}

}  // namespace npb::ckpt
