#pragma once

// Kernel template for SP; explicitly instantiated in sp_native.cpp and
// sp_java.cpp (see ep_impl.hpp for the pattern).

#include <optional>

#include "common/wtime.hpp"
#include "fault/retry.hpp"
#include "mem/mem.hpp"
#include "obs/obs.hpp"
#include "par/parallel_for.hpp"
#include "par/region.hpp"
#include "par/team.hpp"
#include "pseudoapp/app.hpp"
#include "pseudoapp/field_impl.hpp"
#include "simd/simd.hpp"

namespace npb::sp_detail {

using namespace pseudoapp;

/// Per-thread pentadiagonal workspace: the five bands and the line RHS.
template <class P>
struct PentaWork {
  Array1<double, P> e, a, b, c, f, r;
  explicit PentaWork(long n)
      : e(static_cast<std::size_t>(n)), a(static_cast<std::size_t>(n)),
        b(static_cast<std::size_t>(n)), c(static_cast<std::size_t>(n)),
        f(static_cast<std::size_t>(n)), r(static_cast<std::size_t>(n)) {}
};

/// Solves (I + dt*Ld_m) dv = r along one line for characteristic component m
/// with eigenvalue field lambda*phi(c).  The LHS bands carry convection,
/// diffusion and the 4th-difference dissipation with NPB's modified
/// near-boundary rows (mirroring the RHS operator).
///
/// Under V (--mode=vec) the band *setup* of the interior rows (the ones with
/// the full 5-point dissipation shape) runs lane-parallel: phi is gathered
/// lane by lane (its stride depends on the sweep direction), the five band
/// values compute elementwise in the scalar operation order, and the stores
/// land in the contiguous per-q workspaces.  The banded elimination itself
/// is a loop-carried recurrence (row q+1 needs the eliminated row q) and
/// deliberately stays scalar — same numerics in both modes.
template <class P, bool V = false, class PhiAt, class RGet, class RSet>
void penta_line(const System& sys, double lambda, double h, double dt, long n,
                const PhiAt& phi_at, const RGet& rget, const RSet& rset,
                PentaWork<P>& ws) {
  const double inv2h = 1.0 / (2.0 * h);
  const double invh2 = 1.0 / (h * h);
  const double de = dt * sys.eps4;
  const long nc = n - 2;

  [[maybe_unused]] long q0 = 0;
  if constexpr (V) {
    static_assert(!P::kChecked, "vec kernels require unchecked access");
    constexpr int W = simd::Dvec::width;
    // Boundary rows (q = 0, 1, nc-2, nc-1) keep the scalar path below; the
    // interior block [2, nc-2) is lane-chunked here.  A chunk only runs when
    // it fits entirely inside the interior.
    const double diff = dt * sys.nu * invh2;
    const simd::Dvec vdiff = simd::Dvec::broadcast(diff);
    const simd::Dvec vone = simd::Dvec::broadcast(1.0);
    const simd::Dvec vde = simd::Dvec::broadcast(de);
    const simd::Dvec vm4de = simd::Dvec::broadcast(-4.0 * de);
    const simd::Dvec v6de = simd::Dvec::broadcast(6.0 * de);
    const simd::Dvec vtwo = simd::Dvec::broadcast(2.0);
    const simd::Dvec vdt = simd::Dvec::broadcast(dt);
    const simd::Dvec vlambda = simd::Dvec::broadcast(lambda);
    const simd::Dvec vinv2h = simd::Dvec::broadcast(inv2h);
    for (long q = 2; q + W <= nc - 2; q += W) {
      simd::Dvec phi = simd::Dvec::zero();
      for (int l = 0; l < W; ++l) phi.set_lane(l, phi_at(q + 1 + l));
      const simd::Dvec conv = vdt * (vlambda * phi) * vinv2h;
      const auto Q = static_cast<std::size_t>(q);
      simd::store(ws.e.data() + Q, vde);
      simd::store(ws.a.data() + Q, -conv - vdiff + vm4de);
      simd::store(ws.b.data() + Q, vone + vtwo * vdiff + v6de);
      simd::store(ws.c.data() + Q, conv - vdiff + vm4de);
      simd::store(ws.f.data() + Q, vde);
      for (int l = 0; l < W; ++l)
        ws.r[Q + static_cast<std::size_t>(l)] = rget(q + 1 + l);
      P::flops(12 * W);
      q0 = q + W;  // scalar loop resumes after the last full chunk
    }
  }

  for (long q = 0; q < nc; ++q) {
    if constexpr (V) {
      // Skip the rows the lane loop above already produced.
      if (q >= 2 && q < q0) continue;
    }
    const long cidx = q + 1;
    const double lam = lambda * phi_at(cidx);
    const double conv = dt * lam * inv2h;
    const double diff = dt * sys.nu * invh2;
    const auto Q = static_cast<std::size_t>(q);
    double eb = 0.0, ab = -conv - diff, bb = 1.0 + 2.0 * diff, cb = conv - diff,
           fb = 0.0;
    // 4th-difference rows (same shapes as the RHS operator).
    if (cidx == 1) {
      bb += 5.0 * de;
      cb += -4.0 * de;
      fb += de;
    } else if (cidx == 2) {
      ab += -4.0 * de;
      bb += 6.0 * de;
      cb += -4.0 * de;
      fb += de;
    } else if (cidx == n - 3) {
      eb += de;
      ab += -4.0 * de;
      bb += 6.0 * de;
      cb += -4.0 * de;
    } else if (cidx == n - 2) {
      eb += de;
      ab += -4.0 * de;
      bb += 5.0 * de;
    } else {
      eb += de;
      ab += -4.0 * de;
      bb += 6.0 * de;
      cb += -4.0 * de;
      fb += de;
    }
    ws.e[Q] = eb;
    ws.a[Q] = ab;
    ws.b[Q] = bb;
    ws.c[Q] = cb;
    ws.f[Q] = fb;
    ws.r[Q] = rget(cidx);
    P::flops(12);
  }

  // Banded LU elimination of the two sub-diagonals, then back substitution.
  for (long q = 0; q < nc; ++q) {
    const auto Q = static_cast<std::size_t>(q);
    if (q + 1 < nc) {
      const auto Q1 = static_cast<std::size_t>(q + 1);
      const double f1 = ws.a[Q1] / ws.b[Q];
      ws.b[Q1] -= f1 * ws.c[Q];
      ws.c[Q1] -= f1 * ws.f[Q];
      ws.r[Q1] -= f1 * ws.r[Q];
      P::flops(7);
      P::muladds(3);
    }
    if (q + 2 < nc) {
      const auto Q2 = static_cast<std::size_t>(q + 2);
      const double f2 = ws.e[Q2] / ws.b[Q];
      ws.a[Q2] -= f2 * ws.c[Q];
      ws.b[Q2] -= f2 * ws.f[Q];
      ws.r[Q2] -= f2 * ws.r[Q];
      P::flops(7);
      P::muladds(3);
    }
  }
  for (long q = nc - 1; q >= 0; --q) {
    const auto Q = static_cast<std::size_t>(q);
    double s = ws.r[Q];
    if (q + 1 < nc) s -= ws.c[Q] * ws.r[static_cast<std::size_t>(q + 1)];
    if (q + 2 < nc) s -= ws.f[Q] * ws.r[static_cast<std::size_t>(q + 2)];
    ws.r[Q] = s / ws.b[Q];
    P::flops(5);
  }
  for (long q = 0; q < nc; ++q)
    rset(q + 1, ws.r[static_cast<std::size_t>(q)]);
}

/// Pointwise 5x5 transform of the rhs over plane block [lo, hi):
/// rhs <- scale * M * rhs.
template <class P>
void transform_planes(Fields<P>& f, const Mat5& m, double scale, long lo, long hi) {
  const long n = f.n;
  for (long i = lo; i < hi; ++i)
    for (long j = 1; j < n - 1; ++j)
      for (long k = 1; k < n - 1; ++k) {
        Vec5 v{};
        for (int a = 0; a < kComps; ++a) {
          double s = 0.0;
          for (int b = 0; b < kComps; ++b) {
            s += m[static_cast<std::size_t>(a * kComps + b)] *
                 f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                       static_cast<std::size_t>(k), static_cast<std::size_t>(b));
            P::muladds(1);
          }
          v[static_cast<std::size_t>(a)] = scale * s;
          P::flops(11);
        }
        for (int a = 0; a < kComps; ++a)
          f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                static_cast<std::size_t>(k), static_cast<std::size_t>(a)) =
              v[static_cast<std::size_t>(a)];
      }
}

/// Hand-vectorized transform for --mode=vec.  The five components of one
/// grid point are contiguous (m is the innermost Array4 index), so each
/// matrix row contracts against them as one in-order lane dot (simd::dot) —
/// the 5-term sums reassociate, bounded by the vec tolerance tier.
template <class P>
void transform_planes_vec(Fields<P>& f, const Mat5& m, double scale, long lo,
                          long hi) {
  static_assert(!P::kChecked, "vec kernels require unchecked access");
  const long n = f.n;
  for (long i = lo; i < hi; ++i)
    for (long j = 1; j < n - 1; ++j)
      for (long k = 1; k < n - 1; ++k) {
        double* rp = &f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                            static_cast<std::size_t>(k), 0);
        Vec5 v{};
        for (int a = 0; a < kComps; ++a) {
          const double s = simd::dot(m.data() + a * kComps, rp, kComps);
          v[static_cast<std::size_t>(a)] = scale * s;
          P::muladds(kComps);
          P::flops(11);
        }
        for (int a = 0; a < kComps; ++a)
          rp[a] = v[static_cast<std::size_t>(a)];
      }
}

template <class F>
void over_range(WorkerTeam* team, long n, const F& body) {
  if (team == nullptr) {
    body(1, n - 1);
  } else {
    team->run([&](int rank) {
      const Range r = partition(1, n - 1, rank, team->size());
      body(r.lo, r.hi);
    });
  }
}

template <class P, bool V = false>
AppOutput sp_run(const AppParams& prm, int threads, const TeamOptions& topts,
           WorkerTeam* pooled = nullptr) {
  // Team before the fields: under FirstTouch each rank commits the
  // k-plane slabs it will sweep, instead of every page faulting in on
  // the master during init_fields.
  std::optional<TeamRef> team_storage;
  if (threads > 0) team_storage.emplace(threads, topts, pooled);
  WorkerTeam* team = team_storage ? team_storage->get() : nullptr;
  const mem::ScopedTeamPlacement placement(team, topts.schedule);

  Fields<P> f(prm.n);
  init_fields(f);
  const long n = prm.n;
  const double dt = prm.dt;

  const obs::RegionId r_rhs = obs::region("SP/rhs");
  const obs::RegionId r_transform = obs::region("SP/transform");
  const obs::RegionId r_xsolve = obs::region("SP/x_solve");
  const obs::RegionId r_ysolve = obs::region("SP/y_solve");
  const obs::RegionId r_zsolve = obs::region("SP/z_solve");
  const obs::RegionId r_add = obs::region("SP/add");

  auto do_rhs = [&] {
    over_range(team, n, [&](long lo, long hi) { compute_rhs_planes(f, lo, hi); });
  };
  auto transform_lohi = [&](const Mat5& m, double scale, long lo, long hi) {
    if constexpr (V)
      transform_planes_vec(f, m, scale, lo, hi);
    else
      transform_planes(f, m, scale, lo, hi);
  };
  auto transform = [&](const Mat5& m, double scale) {
    obs::ScopedTimer ot(r_transform);
    over_range(team, n,
               [&](long lo, long hi) { transform_lohi(m, scale, lo, hi); });
  };

  AppOutput out;
  do_rhs();
  out.rhs_initial = rhs_norms(f);
  out.err_initial = error_norms(f);

  // Phase bodies over a slab [lo, hi), shared verbatim by the fused and
  // forked drivers so both partition identically (bit-identical results).
  auto x_solve = [&](long lo, long hi, PentaWork<P>& ws) {
    for (long j = lo; j < hi; ++j)
      for (long k = 1; k < n - 1; ++k)
        for (int m = 0; m < kComps; ++m)
          penta_line<P, V>(
              f.sys, f.sys.lx[static_cast<std::size_t>(m)], f.h, dt, n,
              [&](long c) {
                return f.phi(static_cast<std::size_t>(c), static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k));
              },
              [&](long c) {
                return f.rhs(static_cast<std::size_t>(c), static_cast<std::size_t>(j),
                             static_cast<std::size_t>(k), static_cast<std::size_t>(m));
              },
              [&](long c, double v) {
                f.rhs(static_cast<std::size_t>(c), static_cast<std::size_t>(j),
                      static_cast<std::size_t>(k), static_cast<std::size_t>(m)) = v;
              },
              ws);
  };
  auto y_solve = [&](long lo, long hi, PentaWork<P>& ws) {
    for (long i = lo; i < hi; ++i)
      for (long k = 1; k < n - 1; ++k)
        for (int m = 0; m < kComps; ++m)
          penta_line<P, V>(
              f.sys, f.sys.ly[static_cast<std::size_t>(m)], f.h, dt, n,
              [&](long c) {
                return f.phi(static_cast<std::size_t>(i), static_cast<std::size_t>(c),
                             static_cast<std::size_t>(k));
              },
              [&](long c) {
                return f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(c),
                             static_cast<std::size_t>(k), static_cast<std::size_t>(m));
              },
              [&](long c, double v) {
                f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(c),
                      static_cast<std::size_t>(k), static_cast<std::size_t>(m)) = v;
              },
              ws);
  };
  auto z_solve = [&](long lo, long hi, PentaWork<P>& ws) {
    for (long i = lo; i < hi; ++i)
      for (long j = 1; j < n - 1; ++j)
        for (int m = 0; m < kComps; ++m)
          penta_line<P, V>(
              f.sys, f.sys.lz[static_cast<std::size_t>(m)], f.h, dt, n,
              [&](long c) {
                return f.phi(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                             static_cast<std::size_t>(c));
              },
              [&](long c) {
                return f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                             static_cast<std::size_t>(c), static_cast<std::size_t>(m));
              },
              [&](long c, double v) {
                f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                      static_cast<std::size_t>(c), static_cast<std::size_t>(m)) = v;
              },
              ws);
  };
  auto add_phase = [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i)
      for (long j = 1; j < n - 1; ++j)
        for (long k = 1; k < n - 1; ++k)
          for (int m = 0; m < kComps; ++m)
            f.u(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                static_cast<std::size_t>(k), static_cast<std::size_t>(m)) +=
                f.rhs(static_cast<std::size_t>(i), static_cast<std::size_t>(j),
                      static_cast<std::size_t>(k), static_cast<std::size_t>(m));
  };

  // One ADI time step is the retry unit.  As in BT, u is the only state a
  // step carries into the next one (phi, forcing and ue are init-time
  // constants, rhs is rebuilt from u), so the checkpoint is just u.
  fault::Checkpoint ckpt;
  std::optional<fault::StepRunner> steps;
  if (team != nullptr) {
    ckpt.add(f.u.data(), f.u.size() * sizeof(double));
    steps.emplace(*team, topts, ckpt);
  }

  // Forked phase driver over the width actually running (`nt`), so a
  // degraded retry repartitions instead of reading stale slabs.
  auto over_nt = [&](WorkerTeam& tm, int nt, const auto& body) {
    tm.run([&](int rank) {
      const Range r = partition(1, n - 1, rank, nt);
      body(r.lo, r.hi);
    });
  };

  const double t0 = wtime();
  for (int it = 0; it < prm.iterations; ++it) {
    if (team == nullptr) {
      // Serial: same phase sequence, no dispatches.
      {
        obs::ScopedTimer ot(r_rhs);
        do_rhs();
      }
      PentaWork<P> ws(n);
      transform(f.sys.txinv, dt);
      {
        obs::ScopedTimer ot(r_xsolve);
        x_solve(1, n - 1, ws);
      }
      transform(f.sys.tx, 1.0);
      transform(f.sys.tyinv, 1.0);
      {
        obs::ScopedTimer ot(r_ysolve);
        y_solve(1, n - 1, ws);
      }
      transform(f.sys.ty, 1.0);
      transform(f.sys.tzinv, 1.0);
      {
        obs::ScopedTimer ot(r_zsolve);
        z_solve(1, n - 1, ws);
      }
      transform(f.sys.tz, 1.0);
      {
        obs::ScopedTimer ot(r_add);
        add_phase(1, n - 1);
      }
      continue;
    }
    steps->step(it, [&](WorkerTeam& tm, int nt) {
      if (topts.fused) {
        // Fused: one team dispatch per time step.  The eleven phases of the
        // SP step (rhs, three transform/solve/transform triplets, add) run
        // resident inside one SPMD region with a barrier at each phase
        // boundary; the pentadiagonal workspace is allocated once per rank
        // per step.
        spmd(tm, [&](ParallelRegion& rg, int rank) {
          const Range r = partition(1, n - 1, rank, nt);
          PentaWork<P> ws(n);
          auto transform_rg = [&](const Mat5& m, double scale) {
            obs::ScopedTimer ot(r_transform);
            transform_lohi(m, scale, r.lo, r.hi);
          };
          {
            obs::ScopedTimer ot(r_rhs);
            compute_rhs_planes(f, r.lo, r.hi);
          }
          rg.barrier();
          transform_rg(f.sys.txinv, dt);
          rg.barrier();
          {
            obs::ScopedTimer ot(r_xsolve);
            x_solve(r.lo, r.hi, ws);
          }
          rg.barrier();
          transform_rg(f.sys.tx, 1.0);
          rg.barrier();
          transform_rg(f.sys.tyinv, 1.0);
          rg.barrier();
          {
            obs::ScopedTimer ot(r_ysolve);
            y_solve(r.lo, r.hi, ws);
          }
          rg.barrier();
          transform_rg(f.sys.ty, 1.0);
          rg.barrier();
          transform_rg(f.sys.tzinv, 1.0);
          rg.barrier();
          {
            obs::ScopedTimer ot(r_zsolve);
            z_solve(r.lo, r.hi, ws);
          }
          rg.barrier();
          transform_rg(f.sys.tz, 1.0);
          rg.barrier();
          {
            obs::ScopedTimer ot(r_add);
            add_phase(r.lo, r.hi);
          }
        });
      } else {
        // Forked: one fork/join dispatch per phase (the paper's cost model).
        auto transform_nt = [&](const Mat5& m, double scale) {
          obs::ScopedTimer ot(r_transform);
          over_nt(tm, nt,
                  [&](long lo, long hi) { transform_lohi(m, scale, lo, hi); });
        };
        {
          obs::ScopedTimer ot(r_rhs);
          over_nt(tm, nt,
                  [&](long lo, long hi) { compute_rhs_planes(f, lo, hi); });
        }

        // x sweep (dt folded into the first characteristic transform).
        transform_nt(f.sys.txinv, dt);
        {
          obs::ScopedTimer ot(r_xsolve);
          over_nt(tm, nt, [&](long lo, long hi) {
            PentaWork<P> ws(n);
            x_solve(lo, hi, ws);
          });
        }
        transform_nt(f.sys.tx, 1.0);

        // y sweep.
        transform_nt(f.sys.tyinv, 1.0);
        {
          obs::ScopedTimer ot(r_ysolve);
          over_nt(tm, nt, [&](long lo, long hi) {
            PentaWork<P> ws(n);
            y_solve(lo, hi, ws);
          });
        }
        transform_nt(f.sys.ty, 1.0);

        // z sweep.
        transform_nt(f.sys.tzinv, 1.0);
        {
          obs::ScopedTimer ot(r_zsolve);
          over_nt(tm, nt, [&](long lo, long hi) {
            PentaWork<P> ws(n);
            z_solve(lo, hi, ws);
          });
        }
        transform_nt(f.sys.tz, 1.0);

        // add: u += dv.
        {
          obs::ScopedTimer ot(r_add);
          over_nt(tm, nt, add_phase);
        }
      }
    });
  }
  out.seconds = wtime() - t0;

  do_rhs();
  out.rhs_final = rhs_norms(f);
  out.err_final = error_norms(f);
  return out;
}

extern template AppOutput sp_run<Unchecked>(const AppParams&, int, const TeamOptions&, WorkerTeam*);
extern template AppOutput sp_run<Checked>(const AppParams&, int, const TeamOptions&, WorkerTeam*);
extern template AppOutput sp_run<Unchecked, true>(const AppParams&, int, const TeamOptions&, WorkerTeam*);

}  // namespace npb::sp_detail
