#pragma once

#include "npb/run.hpp"
#include "pseudoapp/app.hpp"

namespace npb {

pseudoapp::AppParams sp_params(ProblemClass cls) noexcept;

/// Runs SP: the Scalar Pentadiagonal simulated CFD application.  Each ADI
/// sweep first transforms the RHS into that direction's characteristic
/// variables (a 5x5 matrix-vector product per grid point — the analogue of
/// NPB's txinvr/ninvr/pinvr/tzetar), solves five independent scalar
/// pentadiagonal systems per grid line (the LHS carries the 4th-difference
/// dissipation, which is what widens Beam-Warming's bandwidth to five), and
/// transforms back.
RunResult run_sp(const RunConfig& cfg);

}  // namespace npb
