#include "sp/sp_impl.hpp"

namespace npb::sp_detail {
template AppOutput sp_run<Unchecked>(const AppParams&, int, const TeamOptions&, WorkerTeam*);
}  // namespace npb::sp_detail
