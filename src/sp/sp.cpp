#include "sp/sp.hpp"

#include "sp/sp_impl.hpp"
#include "fault/fault.hpp"
#include "mem/mem.hpp"

namespace npb {

pseudoapp::AppParams sp_params(ProblemClass cls) noexcept {
  // NPB grid sizes and iteration counts; dt retuned for the synthetic
  // system's spectrum (see DESIGN.md section 2).
  switch (cls) {
    case ProblemClass::S: return {12, 100, 0.05};
    case ProblemClass::W: return {36, 400, 0.02};
    case ProblemClass::A: return {64, 400, 0.02};
    case ProblemClass::B: return {102, 400, 0.015};
    case ProblemClass::C: return {162, 400, 0.01};
  }
  return {12, 100, 0.05};
}

RunResult run_sp(const RunConfig& cfg) {
  using namespace sp_detail;
  const AppParams p = sp_params(cfg.cls);
  const TeamOptions topts{cfg.barrier, cfg.warmup_spins, Schedule{},
                          cfg.fused, cfg.fault.watchdog_ms, cfg.mode,
                          cfg.runtime};
  const fault::ScopedFaultSession fault_scope(cfg.fault);
  const ckpt::ScopedCkptSession ckpt_scope(ckpt_meta("SP", cfg), cfg.ckpt);
  const mem::ScopedMemConfig mem_scope(cfg.mem);

  const AppOutput o = cfg.mode == Mode::Java
                          ? sp_run<Checked>(p, cfg.threads, topts, cfg.team)
                          : cfg.mode == Mode::Vec
                                ? sp_run<Unchecked, true>(p, cfg.threads, topts, cfg.team)
                                : sp_run<Unchecked>(p, cfg.threads, topts, cfg.team);

  // Per point per iteration: RHS stencil (~500 flops), six 5x5 transforms
  // (~330) and 15 pentadiagonal row eliminations (~300).
  const double pts = static_cast<double>((p.n - 2)) * static_cast<double>((p.n - 2)) *
                     static_cast<double>((p.n - 2));
  const double mops =
      static_cast<double>(p.iterations) * pts * 1130.0 / (o.seconds * 1.0e6);
  return pseudoapp::finish_app("SP", cfg, o, mops);
}

}  // namespace npb
