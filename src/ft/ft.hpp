#pragma once

#include "npb/run.hpp"

namespace npb {

/// FT problem sizes: n1 x n2 x n3 complex grid (all powers of two) evolved
/// for `iterations` timesteps.
struct FtParams {
  long n1 = 64, n2 = 64, n3 = 64;
  int iterations = 6;
  double alpha = 1.0e-6;
};

FtParams ft_params(ProblemClass cls) noexcept;

/// Runs FT: the computational kernel of a 3-D FFT-based spectral solver.
/// A random complex field is transformed once, then each timestep scales the
/// spectrum by Gaussian decay factors (the exact solution of the diffusion
/// equation) and transforms back, checksumming 1024 scattered elements.
/// Structured-grid group; the paper flags its appetite for memory (class A
/// needs ~350 MB in Java) as the thing that killed JVM scalability on the
/// Enterprise10000.
RunResult run_ft(const RunConfig& cfg);

}  // namespace npb
