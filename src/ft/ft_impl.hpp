#pragma once

// Kernel template for FT; explicitly instantiated in ft_native.cpp and
// ft_java.cpp (see ep_impl.hpp for the pattern).
//
// Complex data lives in two parallel double arrays (re/im) — how an
// efficient Java port stores it, since Java lacks a complex primitive (a
// deficiency the paper's conclusions call out explicitly).  Layout is
// (i1, i2, i3) row-major with i3 contiguous.

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

#include "array/array.hpp"
#include "common/randlc.hpp"
#include "common/wtime.hpp"
#include "fault/retry.hpp"
#include "ft/ft.hpp"
#include "mem/mem.hpp"
#include "obs/obs.hpp"
#include "par/parallel_for.hpp"
#include "par/region.hpp"
#include "par/team.hpp"

namespace npb::ft_detail {

inline constexpr double kFtSeed = 314159265.0;

struct FtOutput {
  std::vector<double> checksums;  ///< re, im per timestep
  double parseval_err = 0.0;      ///< | ||v||^2 - ||V||^2/N | / ||v||^2
  double roundtrip_err = 0.0;     ///< max |ifft(fft(v)) - v| over samples
  double seconds = 0.0;
};

/// Twiddle table for one FFT length: tw[j] = exp(2 pi i j / n), j < n/2.
template <class P>
struct Twiddle {
  Array1<double, P> re, im;
};

template <class P>
Twiddle<P> make_twiddle(long n) {
  Twiddle<P> t{Array1<double, P>(static_cast<std::size_t>(n / 2)),
               Array1<double, P>(static_cast<std::size_t>(n / 2))};
  for (long j = 0; j < n / 2; ++j) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(j) /
                       static_cast<double>(n);
    t.re[static_cast<std::size_t>(j)] = std::cos(ang);
    t.im[static_cast<std::size_t>(j)] = std::sin(ang);
  }
  return t;
}

/// In-place iterative radix-2 Cooley-Tukey on the contiguous scratch line.
/// `sign` +1 = forward (exp(-i...)), -1 = inverse (exp(+i...), unscaled).
template <class P>
void fft_scratch(Array1<double, P>& sre, Array1<double, P>& sim, long n,
                 const Twiddle<P>& tw, int sign) {
  // Bit-reversal permutation.
  for (long i = 1, j = 0; i < n; ++i) {
    long bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j &= ~bit;
    j |= bit;
    if (i < j) {
      std::swap(sre[static_cast<std::size_t>(i)], sre[static_cast<std::size_t>(j)]);
      std::swap(sim[static_cast<std::size_t>(i)], sim[static_cast<std::size_t>(j)]);
    }
  }
  for (long len = 2; len <= n; len <<= 1) {
    const long half = len >> 1;
    const long step = n / len;
    for (long i = 0; i < n; i += len) {
      for (long k = 0; k < half; ++k) {
        const auto tj = static_cast<std::size_t>(k * step);
        const double wre = tw.re[tj];
        const double wim = -static_cast<double>(sign) * tw.im[tj];
        const auto a = static_cast<std::size_t>(i + k);
        const auto b = static_cast<std::size_t>(i + k + half);
        const double xre = sre[b] * wre - sim[b] * wim;
        const double xim = sre[b] * wim + sim[b] * wre;
        sre[b] = sre[a] - xre;
        sim[b] = sim[a] - xim;
        sre[a] += xre;
        sim[a] += xim;
        P::flops(10);
        P::muladds(2);
      }
    }
  }
}

/// Per-thread strided-line driver: gather -> fft -> scatter (with optional
/// 1/n scaling for the inverse).
template <class P>
void fft_line(Array1<double, P>& re, Array1<double, P>& im, std::size_t base,
              std::size_t stride, long n, const Twiddle<P>& tw, int sign,
              Array1<double, P>& sre, Array1<double, P>& sim) {
  for (long k = 0; k < n; ++k) {
    const std::size_t at = base + static_cast<std::size_t>(k) * stride;
    sre[static_cast<std::size_t>(k)] = re[at];
    sim[static_cast<std::size_t>(k)] = im[at];
  }
  fft_scratch(sre, sim, n, tw, sign);
  const double scale = sign > 0 ? 1.0 : 1.0 / static_cast<double>(n);
  for (long k = 0; k < n; ++k) {
    const std::size_t at = base + static_cast<std::size_t>(k) * stride;
    re[at] = scale * sre[static_cast<std::size_t>(k)];
    im[at] = scale * sim[static_cast<std::size_t>(k)];
  }
}

template <class P>
struct FtState {
  long n1, n2, n3;
  Twiddle<P> tw1, tw2, tw3;

  FtState(long a, long b, long c)
      : n1(a), n2(b), n3(c), tw1(make_twiddle<P>(a)), tw2(make_twiddle<P>(b)),
        tw3(make_twiddle<P>(c)) {}

  std::size_t total() const {
    return static_cast<std::size_t>(n1) * static_cast<std::size_t>(n2) *
           static_cast<std::size_t>(n3);
  }

  /// The three 1-D pass sweeps, expressed against a generic driver so the
  /// forked (fft3d) and fused (fft3d_region) transforms share the pass
  /// bodies verbatim: `run_pass(outer_n, line_of)` must run line_of(o, sre,
  /// sim) for every o in [0, outer_n) across whatever execution shape it
  /// owns, finishing each pass before the next starts.
  template <class RunPass>
  void fft_passes(Array1<double, P>& re, Array1<double, P>& im, int sign,
                  const RunPass& run_pass) const {
    const auto s23 = static_cast<std::size_t>(n2) * static_cast<std::size_t>(n3);

    // Along i3 (contiguous): one line per (i1, i2).
    run_pass(n1 * n2, [&](long o, Array1<double, P>& sre, Array1<double, P>& sim) {
      fft_line(re, im, static_cast<std::size_t>(o) * static_cast<std::size_t>(n3), 1,
               n3, tw3, sign, sre, sim);
    });
    // Along i2 (stride n3): one line per (i1, i3).
    run_pass(n1 * n3, [&](long o, Array1<double, P>& sre, Array1<double, P>& sim) {
      const long i1 = o / n3;
      const long i3 = o % n3;
      fft_line(re, im,
               static_cast<std::size_t>(i1) * s23 + static_cast<std::size_t>(i3),
               static_cast<std::size_t>(n3), n2, tw2, sign, sre, sim);
    });
    // Along i1 (stride n2*n3): one line per (i2, i3).
    run_pass(n2 * n3, [&](long o, Array1<double, P>& sre, Array1<double, P>& sim) {
      fft_line(re, im, static_cast<std::size_t>(o), s23, n1, tw1, sign, sre, sim);
    });
  }

  /// 3-D transform of (re, im), forward or inverse, optionally on a team.
  void fft3d(Array1<double, P>& re, Array1<double, P>& im, int sign,
             WorkerTeam* team) const {
    const long maxn = std::max({n1, n2, n3});
    fft_passes(re, im, sign, [&](long outer_n, auto&& line_of) {
      if (team == nullptr) {
        Array1<double, P> sre(static_cast<std::size_t>(maxn));
        Array1<double, P> sim(static_cast<std::size_t>(maxn));
        for (long o = 0; o < outer_n; ++o) line_of(o, sre, sim);
      } else {
        team->run([&](int rank) {
          Array1<double, P> sre(static_cast<std::size_t>(maxn));
          Array1<double, P> sim(static_cast<std::size_t>(maxn));
          const Range rg = partition(0, outer_n, rank, team->size());
          for (long o = rg.lo; o < rg.hi; ++o) line_of(o, sre, sim);
        });
      }
    });
  }

  /// In-region 3-D transform: collective — every rank of an open SPMD
  /// region calls it with its rank and its own scratch pair (capacity
  /// max(n1,n2,n3)); passes are separated by region barriers.  Partitioning
  /// matches fft3d's forked dispatches, so results are bit-identical.
  void fft3d_region(Array1<double, P>& re, Array1<double, P>& im, int sign,
                    ParallelRegion& region, int rank, int nranks,
                    Array1<double, P>& sre, Array1<double, P>& sim) const {
    fft_passes(re, im, sign, [&](long outer_n, auto&& line_of) {
      const Range rg = partition(0, outer_n, rank, nranks);
      for (long o = rg.lo; o < rg.hi; ++o) line_of(o, sre, sim);
      region.barrier();
    });
  }
};

/// Regenerates the initial random value pair of flat element `e` — used by
/// the untimed round-trip check so the initial field need not be stored.
inline void initial_value(std::size_t e, double& vre, double& vim) {
  double x = randlc_skip(kFtSeed, kDefaultMultiplier, 2ULL * e);
  vre = randlc(x, kDefaultMultiplier);
  vim = randlc(x, kDefaultMultiplier);
}

template <class P>
FtOutput ft_run(const FtParams& p, int threads, const TeamOptions& topts,
           WorkerTeam* pooled = nullptr) {
  // Team first, then allocation: under FirstTouch the big field arrays are
  // committed slab-by-slab on the ranks whose i1-planes they hold — FT's
  // memory-pressure collapse in the paper is exactly the cost of streaming
  // the whole field out of one node.
  std::optional<TeamRef> team_storage;
  if (threads > 0) team_storage.emplace(threads, topts, pooled);
  WorkerTeam* team = team_storage ? team_storage->get() : nullptr;
  const mem::ScopedTeamPlacement placement(team, topts.schedule);

  const FtState<P> st(p.n1, p.n2, p.n3);
  const std::size_t total = st.total();

  Array1<double, P> vfre(total), vfim(total);  // frequency state
  Array1<double, P> wre(total), wim(total);    // per-timestep working copy

  // Untimed initialization: the random field, filled in flat order with two
  // randlc values per element (parallel-safe via skip-ahead).
  double v0_norm2 = 0.0;
  {
    auto fill = [&](long lo, long hi) -> double {
      double x = randlc_skip(kFtSeed, kDefaultMultiplier,
                             2ULL * static_cast<unsigned long long>(lo));
      double acc = 0.0;
      for (long e = lo; e < hi; ++e) {
        const double a = randlc(x, kDefaultMultiplier);
        const double b = randlc(x, kDefaultMultiplier);
        vfre[static_cast<std::size_t>(e)] = a;
        vfim[static_cast<std::size_t>(e)] = b;
        acc += a * a + b * b;
      }
      return acc;
    };
    if (team == nullptr) {
      v0_norm2 = fill(0, static_cast<long>(total));
    } else {
      std::vector<detail::PaddedDouble> partial(static_cast<std::size_t>(threads));
      team->run([&](int rank) {
        const Range rg = partition(0, static_cast<long>(total), rank, threads);
        partial[static_cast<std::size_t>(rank)].v = fill(rg.lo, rg.hi);
      });
      for (const auto& q : partial) v0_norm2 += q.v;
    }
  }

  const obs::RegionId r_fft = obs::region("FT/fft");
  const obs::RegionId r_evolve = obs::region("FT/evolve");
  const obs::RegionId r_checksum = obs::region("FT/checksum");

  FtOutput out;
  const double t0 = wtime();

  // Forward transform of the initial field; vf then stays in frequency
  // space for the whole run.
  {
    obs::ScopedTimer ot(r_fft);
    st.fft3d(vfre, vfim, +1, team);
  }

  // Per-dimension Gaussian decay factors, recomputed each timestep.  Array1
  // (not std::vector) so they get the same alignment/placement treatment —
  // and the same java-mode bounds accounting — as every other buffer.
  Array1<double, P> e1(static_cast<std::size_t>(p.n1));
  Array1<double, P> e2(static_cast<std::size_t>(p.n2));
  Array1<double, P> e3(static_cast<std::size_t>(p.n3));
  const double c = -4.0 * p.alpha * std::numbers::pi * std::numbers::pi;

  // One time step is the retry unit, and FT's steps carry almost no mutable
  // state: the frequency field vf is read-only during the loop, the decay
  // tables and the working copy w are fully rewritten each step (evolve
  // writes every element before the in-place inverse transform).  The one
  // carried accumulator is the per-step checksum pair, so the team path
  // pre-sizes it, computes it inside the step body, and registers it as the
  // only span — a retry rolls it back and a durable resume restores every
  // replayed step's checksum.
  fault::Checkpoint ckpt;
  std::optional<fault::StepRunner> steps;
  if (team != nullptr) {
    out.checksums.assign(2 * static_cast<std::size_t>(p.iterations), 0.0);
    ckpt.add(out.checksums.data(), out.checksums.size() * sizeof(double));
    steps.emplace(*team, topts, ckpt);
  }

  for (int t = 1; t <= p.iterations; ++t) {
    auto fill_decay = [&](Array1<double, P>& e, long n) {
      for (long k = 0; k < n; ++k) {
        const long kt = k <= n / 2 ? k : k - n;
        e[static_cast<std::size_t>(k)] =
            std::exp(c * static_cast<double>(t) * static_cast<double>(kt * kt));
      }
    };
    // evolve: w = vf * e1[k1] e2[k2] e3[k3]
    auto evolve = [&](long lo1, long hi1) {
      for (long k1 = lo1; k1 < hi1; ++k1)
        for (long k2 = 0; k2 < p.n2; ++k2) {
          const double f12 = e1[static_cast<std::size_t>(k1)] *
                             e2[static_cast<std::size_t>(k2)];
          const std::size_t base =
              (static_cast<std::size_t>(k1) * static_cast<std::size_t>(p.n2) +
               static_cast<std::size_t>(k2)) *
              static_cast<std::size_t>(p.n3);
          for (long k3 = 0; k3 < p.n3; ++k3) {
            const double f = f12 * e3[static_cast<std::size_t>(k3)];
            wre[base + static_cast<std::size_t>(k3)] =
                f * vfre[base + static_cast<std::size_t>(k3)];
            wim[base + static_cast<std::size_t>(k3)] =
                f * vfim[base + static_cast<std::size_t>(k3)];
            P::flops(3);
          }
        }
    };
    // Checksum 1024 scattered elements of the step's evolved field.
    auto checksum = [&](double& cre, double& cim) {
      obs::ScopedTimer ot(r_checksum);
      cre = 0.0;
      cim = 0.0;
      for (long j = 1; j <= 1024; ++j) {
        const auto i1 = static_cast<std::size_t>((5 * j) % p.n1);
        const auto i2 = static_cast<std::size_t>((3 * j) % p.n2);
        const auto i3 = static_cast<std::size_t>(j % p.n3);
        const std::size_t at =
            (i1 * static_cast<std::size_t>(p.n2) + i2) * static_cast<std::size_t>(p.n3) +
            i3;
        cre += wre[at];
        cim += wim[at];
      }
    };
    if (team == nullptr) {
      fill_decay(e1, p.n1);
      fill_decay(e2, p.n2);
      fill_decay(e3, p.n3);
      {
        obs::ScopedTimer ot(r_evolve);
        evolve(0, p.n1);
      }
      {
        obs::ScopedTimer ot(r_fft);
        st.fft3d(wre, wim, -1, nullptr);
      }
      double cre = 0.0, cim = 0.0;
      checksum(cre, cim);
      out.checksums.push_back(cre);
      out.checksums.push_back(cim);
    } else {
      steps->step(t, [&](WorkerTeam& tm, int nt) {
        if (topts.fused) {
          // Fused: decay tables, evolve, and all three inverse-FFT passes
          // run resident in one dispatch per time step; each rank keeps one
          // scratch line pair for the whole region instead of one per pass
          // dispatch.
          const long maxn = std::max({p.n1, p.n2, p.n3});
          spmd(tm, [&](ParallelRegion& rg, int rank) {
            Array1<double, P> sre(static_cast<std::size_t>(maxn));
            Array1<double, P> sim(static_cast<std::size_t>(maxn));
            if (rank == 0) {
              fill_decay(e1, p.n1);
              fill_decay(e2, p.n2);
              fill_decay(e3, p.n3);
            }
            rg.barrier();
            {
              obs::ScopedTimer ot(r_evolve);
              const Range r = partition(0, p.n1, rank, nt);
              evolve(r.lo, r.hi);
            }
            rg.barrier();
            obs::ScopedTimer ot(r_fft);
            st.fft3d_region(wre, wim, -1, rg, rank, nt, sre, sim);
          });
        } else {
          fill_decay(e1, p.n1);
          fill_decay(e2, p.n2);
          fill_decay(e3, p.n3);
          {
            obs::ScopedTimer ot(r_evolve);
            tm.run([&](int rank) {
              const Range rg = partition(0, p.n1, rank, nt);
              evolve(rg.lo, rg.hi);
            });
          }
          {
            obs::ScopedTimer ot(r_fft);
            st.fft3d(wre, wim, -1, &tm);
          }
        }
        double cre = 0.0, cim = 0.0;
        checksum(cre, cim);
        out.checksums[2 * static_cast<std::size_t>(t - 1)] = cre;
        out.checksums[2 * static_cast<std::size_t>(t - 1) + 1] = cim;
      });
    }
  }
  out.seconds = wtime() - t0;

  // ---- untimed intrinsic checks ----
  // Parseval: ||v||^2 == ||V||^2 / N for the forward transform.
  double vf_norm2 = 0.0;
  for (std::size_t e = 0; e < total; ++e)
    vf_norm2 += vfre[e] * vfre[e] + vfim[e] * vfim[e];
  out.parseval_err =
      std::fabs(v0_norm2 - vf_norm2 / static_cast<double>(total)) / v0_norm2;

  // Round trip: ifft(vf) must reproduce the (regenerated) initial field.
  for (std::size_t e = 0; e < total; ++e) {
    wre[e] = vfre[e];
    wim[e] = vfim[e];
  }
  st.fft3d(wre, wim, -1, team);
  double maxerr = 0.0;
  const std::size_t samples = 4096;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t e = (s * total) / samples;
    double vre = 0.0, vim = 0.0;
    initial_value(e, vre, vim);
    maxerr = std::fmax(maxerr, std::fabs(wre[e] - vre));
    maxerr = std::fmax(maxerr, std::fabs(wim[e] - vim));
  }
  out.roundtrip_err = maxerr;
  return out;
}

extern template FtOutput ft_run<Unchecked>(const FtParams&, int, const TeamOptions&, WorkerTeam*);
extern template FtOutput ft_run<Checked>(const FtParams&, int, const TeamOptions&, WorkerTeam*);

}  // namespace npb::ft_detail
