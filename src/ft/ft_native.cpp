#include "ft/ft_impl.hpp"

namespace npb::ft_detail {
template FtOutput ft_run<Unchecked>(const FtParams&, int, const TeamOptions&, WorkerTeam*);
}  // namespace npb::ft_detail
