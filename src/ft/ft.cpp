#include "ft/ft.hpp"

#include <cmath>

#include "common/reference.hpp"
#include "common/verify.hpp"
#include "ft/ft_impl.hpp"
#include "fault/fault.hpp"
#include "mem/mem.hpp"

namespace npb {

FtParams ft_params(ProblemClass cls) noexcept {
  switch (cls) {
    case ProblemClass::S: return {64, 64, 64, 6, 1.0e-6};
    case ProblemClass::W: return {128, 128, 32, 6, 1.0e-6};
    case ProblemClass::A: return {256, 256, 128, 6, 1.0e-6};
    case ProblemClass::B: return {512, 256, 256, 20, 1.0e-6};
    case ProblemClass::C: return {512, 512, 512, 20, 1.0e-6};
  }
  return {64, 64, 64, 6, 1.0e-6};
}

RunResult run_ft(const RunConfig& cfg) {
  using namespace ft_detail;
  const FtParams p = ft_params(cfg.cls);
  const TeamOptions topts{cfg.barrier, cfg.warmup_spins, Schedule{},
                          cfg.fused, cfg.fault.watchdog_ms, cfg.mode,
                          cfg.runtime};
  const fault::ScopedFaultSession fault_scope(cfg.fault);
  const ckpt::ScopedCkptSession ckpt_scope(ckpt_meta("FT", cfg), cfg.ckpt);
  const mem::ScopedMemConfig mem_scope(cfg.mem);

  // FT's butterflies are strided complex recurrences the wrapper's
  // contiguous double lanes don't map onto, so --mode=vec runs the native
  // instantiation (bit-identical; Exact tier).
  const FtOutput o = cfg.mode == Mode::Java
                         ? ft_run<Checked>(p, cfg.threads, topts, cfg.team)
                         : ft_run<Unchecked>(p, cfg.threads, topts, cfg.team);

  RunResult r;
  r.name = "FT";
  r.cls = cfg.cls;
  r.mode = cfg.mode;
  r.threads = cfg.threads;
  r.seconds = o.seconds;
  const double n = static_cast<double>(p.n1) * static_cast<double>(p.n2) *
                   static_cast<double>(p.n3);
  const double log2n = std::log2(n);
  r.mops = (static_cast<double>(p.iterations) + 1.0) * 5.0 * n * log2n /
           (o.seconds * 1.0e6);

  r.checksums = o.checksums;

  const bool intrinsic = o.parseval_err < 1.0e-10 && o.roundtrip_err < 1.0e-10;
  r.verify_detail = "intrinsic: parseval err " + std::to_string(o.parseval_err) +
                    ", fft round-trip err " + std::to_string(o.roundtrip_err) + "\n";

  bool ref_ok = true;
  if (const auto ref = reference_checksums("FT", cfg.cls)) {
    const VerifyResult v = verify_checksums(r.checksums, *ref);
    ref_ok = v.passed;
    r.reference_checked = true;
    r.verify_detail += v.detail;
  }
  r.verified = intrinsic && ref_ok;
  return r;
}

}  // namespace npb
