// Ablation of LU's synchronization structure — the paper's section 5.2
// observation: "The lower scalability of LU can be explained by the fact
// that it performs the thread synchronization inside a loop over one grid
// dimension, thus introducing higher overhead."
//
// Two parallelizations of the *same* SSOR sweep (bitwise-identical results):
//   pipelined   - j-slabs, point-to-point handoff per i-plane (NPB LU);
//   hyperplane  - i+j+k wavefronts, one team barrier per hyperplane
//                 (NPB's LU-HP variant; ~3x more synchronization events).
//
// Flags: --class=S|W|A   --threads=0,1,2,...

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "lu/lu.hpp"

int main(int argc, char** argv) {
  using namespace npb;
  const benchutil::Args args = benchutil::parse(argc, argv);

  Table t("LU synchronization ablation: pipelined vs hyperplane sweeps "
          "(class " + std::string(to_string(args.cls)) + ", seconds)");
  std::vector<std::string> header{"Variant/mode", "Serial"};
  for (int th : args.threads)
    if (th > 0) header.push_back(std::to_string(th));
  t.set_header(header);

  struct Row {
    const char* label;
    RunResult (*fn)(const RunConfig&);
    Mode mode;
  };
  const Row rows[] = {
      {"LU pipelined  native", &run_lu, Mode::Native},
      {"LU hyperplane native", &run_lu_hp, Mode::Native},
      {"LU pipelined  java", &run_lu, Mode::Java},
      {"LU hyperplane java", &run_lu_hp, Mode::Java},
  };
  for (const Row& row : rows) {
    RunConfig cfg;
    cfg.cls = args.cls;
    cfg.mode = row.mode;
    cfg.mem = args.mem;
    cfg.threads = 0;
    std::vector<std::string> cells{row.label,
                                   Table::cell(benchutil::timed_run(row.fn, cfg))};
    for (int th : args.threads) {
      if (th <= 0) continue;
      cfg.threads = th;
      cells.push_back(Table::cell(benchutil::timed_run(row.fn, cfg)));
    }
    t.add_row(cells);
    std::fprintf(stderr, "%s done\n", row.label);
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nBoth variants compute bitwise-identical sweeps; the hyperplane\n"
            "variant trades the pipeline's fill/drain bubbles for ~3x more\n"
            "synchronization events — on few CPUs the pipeline wins, which is\n"
            "the cost structure behind the paper's LU scalability note.");
  return 0;
}
