// Ablation for the vec kernel mode: java vs native vs vec over the kernels
// that were hand-vectorized (the five cfdops, the MG smoother/residual via a
// full MG class-S run, the CG sparse mat-vec via a class-S solve, and the
// BT/SP line solvers via class-S runs).  Native already benefits from the
// autovectorizer, so vec-over-native isolates what *explicit* lanes recover —
// the analogue of NPB3.3's VERSION=VEC variants — while java-over-native
// restates the paper's translation cost for scale.
//
// google-benchmark binary; pass --benchmark_filter=... to narrow.  The CI
// perf-smoke run asserts at least one vec kernel beats native here.

#include <benchmark/benchmark.h>

#include "cfdops/cfdops.hpp"
#include "npb/registry.hpp"

namespace {

// ---- cfdops microkernels ---------------------------------------------------

npb::CfdConfig cfd_cfg(npb::Mode mode) {
  npb::CfdConfig c;
  c.n1 = 41;
  c.n2 = 41;
  c.n3 = 50;
  c.reps = 1;
  c.mode = mode;
  c.shape = npb::ArrayShape::Linearized;
  c.threads = 0;
  return c;
}

void run_cfd(benchmark::State& state, npb::CfdOp op, npb::Mode mode) {
  const npb::CfdConfig c = cfd_cfg(mode);
  double checksum = 0.0;
  for (auto _ : state) {
    const npb::CfdResult r = npb::run_cfd_op(op, c);
    checksum = r.checksum;
    state.SetIterationTime(r.seconds);
  }
  benchmark::DoNotOptimize(checksum);
}

// ---- full class-S benchmark runs -------------------------------------------

void run_bench(benchmark::State& state, const char* name, npb::Mode mode) {
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.mode = mode;
  cfg.threads = 0;
  npb::RunFn fn = npb::find_benchmark(name);
  double checksum = 0.0;
  for (auto _ : state) {
    const npb::RunResult r = fn(cfg);
    checksum = r.checksums.empty() ? 0.0 : r.checksums[0];
    state.SetIterationTime(r.seconds);
  }
  benchmark::DoNotOptimize(checksum);
}

#define VEC_ABLATION_OP(op_name, op)                                            \
  void BM_##op_name##_java(benchmark::State& s) {                              \
    run_cfd(s, op, npb::Mode::Java);                                           \
  }                                                                            \
  void BM_##op_name##_native(benchmark::State& s) {                           \
    run_cfd(s, op, npb::Mode::Native);                                         \
  }                                                                            \
  void BM_##op_name##_vec(benchmark::State& s) {                              \
    run_cfd(s, op, npb::Mode::Vec);                                            \
  }                                                                            \
  BENCHMARK(BM_##op_name##_java)->UseManualTime()->Unit(benchmark::kMillisecond);   \
  BENCHMARK(BM_##op_name##_native)->UseManualTime()->Unit(benchmark::kMillisecond); \
  BENCHMARK(BM_##op_name##_vec)->UseManualTime()->Unit(benchmark::kMillisecond)

#define VEC_ABLATION_BENCH(bm)                                                  \
  void BM_##bm##_java(benchmark::State& s) { run_bench(s, #bm, npb::Mode::Java); } \
  void BM_##bm##_native(benchmark::State& s) {                                 \
    run_bench(s, #bm, npb::Mode::Native);                                      \
  }                                                                            \
  void BM_##bm##_vec(benchmark::State& s) { run_bench(s, #bm, npb::Mode::Vec); } \
  BENCHMARK(BM_##bm##_java)->UseManualTime()->Unit(benchmark::kMillisecond);   \
  BENCHMARK(BM_##bm##_native)->UseManualTime()->Unit(benchmark::kMillisecond); \
  BENCHMARK(BM_##bm##_vec)->UseManualTime()->Unit(benchmark::kMillisecond)

VEC_ABLATION_OP(Assignment, npb::CfdOp::Assignment);
VEC_ABLATION_OP(Stencil1, npb::CfdOp::FirstOrderStencil);
VEC_ABLATION_OP(Stencil2, npb::CfdOp::SecondOrderStencil);
VEC_ABLATION_OP(MatVec, npb::CfdOp::MatVec);
VEC_ABLATION_OP(Reduction, npb::CfdOp::ReductionSum);

VEC_ABLATION_BENCH(CG);
VEC_ABLATION_BENCH(MG);
VEC_ABLATION_BENCH(BT);
VEC_ABLATION_BENCH(SP);

}  // namespace

BENCHMARK_MAIN();
