// Ablation for the section 5.2 threading findings:
//   - barrier strategy cost: monitor-style condvar (Java wait/notify) vs
//     sense-reversing spin, across thread counts;
//   - fork-join (master-workers dispatch) overhead per parallel region;
//   - pipeline handoff cost (the sync LU performs inside its sweep loop);
//   - the CG thread warm-up fix: the paper forced the JVM to place threads
//     on distinct CPUs by giving each thread priming work.  With 1:1
//     std::threads the fix is unnecessary; the table at the end quantifies
//     that it is also harmless.
//   - region fusion: dispatches per time step with --fused=on vs --fused=off
//     for every benchmark, read off the team/dispatches counter — the
//     "enlarge the parallel region" remedy the section 5.2 overhead
//     decomposition motivates, quantified.
//
// google-benchmark binary; the warm-up and fusion tables print after the
// benchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bt/bt.hpp"
#include "cg/cg.hpp"
#include "common/table.hpp"
#include "ft/ft.hpp"
#include "is/is.hpp"
#include "lu/lu.hpp"
#include "mg/mg.hpp"
#include "npb/registry.hpp"
#include "par/parallel_for.hpp"
#include "par/pipeline.hpp"
#include "par/team.hpp"
#include "sp/sp.hpp"

namespace {

void BM_BarrierRound(benchmark::State& state) {
  const auto kind = static_cast<npb::BarrierKind>(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  npb::WorkerTeam team(nthreads, npb::TeamOptions{kind, 0});
  for (auto _ : state) {
    team.run([&](int) {
      for (int i = 0; i < 100; ++i) team.barrier();
    });
  }
  state.counters["barriers/s"] = benchmark::Counter(
      100.0 * static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel(npb::to_string(kind));
}
BENCHMARK(BM_BarrierRound)
    ->ArgsProduct({{static_cast<long>(npb::BarrierKind::CondVar),
                    static_cast<long>(npb::BarrierKind::SpinSense)},
                   {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_ForkJoin(benchmark::State& state) {
  const int nthreads = static_cast<int>(state.range(0));
  npb::WorkerTeam team(nthreads);
  for (auto _ : state) team.run([](int) {});
  state.counters["regions/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ForkJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_PipelineHandoff(benchmark::State& state) {
  const int nthreads = static_cast<int>(state.range(0));
  npb::WorkerTeam team(nthreads);
  npb::PipelineSync sync(nthreads);
  const long steps = 200;
  for (auto _ : state) {
    sync.reset();
    team.run([&](int rank) {
      for (long s = 0; s < steps; ++s) {
        if (rank > 0) sync.wait_for(rank - 1, s);
        sync.post(rank, s);
      }
    });
  }
  state.counters["handoffs/s"] = benchmark::Counter(
      static_cast<double>(steps * state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineHandoff)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void warmup_table() {
  npb::Table t("CG thread warm-up fix (paper section 5.2): CG.S java mode, 2 threads");
  t.set_header({"Configuration", "Seconds"});
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.mode = npb::Mode::Java;
  cfg.threads = 2;
  cfg.warmup_spins = 0;
  t.add_row({"no warm-up", npb::Table::cell(npb::run_cg(cfg).seconds, 3)});
  cfg.warmup_spins = 1000000;
  t.add_row({"warm-up (1e6 spins/thread)", npb::Table::cell(npb::run_cg(cfg).seconds, 3)});
  std::fputs(t.render().c_str(), stdout);
  std::puts("With 1:1 kernel threads the fix changes nothing (expected divergence\n"
            "from the paper, whose JVM ran all CG threads on 1-2 POSIX threads\n"
            "until each had demonstrated work).");
}

void fusion_table() {
  if (!npb::obs::kActive) {
    std::puts("Fusion table skipped: built with NPB_OBS_DISABLED, no "
              "team/dispatches counter to read.");
    return;
  }
  // Time steps per class-S run, the denominator of dispatches/step.  EP has
  // no time-step loop: the whole run is one dispatch by construction.
  const struct {
    const char* name;
    int steps;
  } rows[] = {
      {"BT", npb::bt_params(npb::ProblemClass::S).iterations},
      {"SP", npb::sp_params(npb::ProblemClass::S).iterations},
      {"LU", npb::lu_params(npb::ProblemClass::S).iterations},
      {"FT", npb::ft_params(npb::ProblemClass::S).iterations},
      {"IS", npb::is_params(npb::ProblemClass::S).iterations},
      {"CG", npb::cg_params(npb::ProblemClass::S).niter},
      {"MG", npb::mg_params(npb::ProblemClass::S).iterations},
      {"EP", 1},
  };
  npb::Table t("Region fusion (paper section 5.2): team dispatches per time "
               "step, class S, 2 threads");
  t.set_header({"Benchmark", "Steps", "Disp/step forked", "Disp/step fused",
                "Barrier s forked", "Barrier s fused"});
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.mode = npb::Mode::Native;
  cfg.threads = 2;
  for (const auto& row : rows) {
    npb::RunFn fn = npb::find_benchmark(row.name);
    cfg.fused = false;
    const npb::RunResult forked = npb::run_instrumented(fn, cfg);
    cfg.fused = true;
    const npb::RunResult fused = npb::run_instrumented(fn, cfg);
    const auto steps = static_cast<double>(row.steps);
    t.add_row({row.name, std::to_string(row.steps),
               npb::Table::cell(forked.obs.dispatches_total / steps, 1),
               npb::Table::cell(fused.obs.dispatches_total / steps, 1),
               npb::Table::cell(forked.obs.barrier_wait_seconds, 4),
               npb::Table::cell(fused.obs.barrier_wait_seconds, 4)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("Fused runs approach 1 dispatch/step (setup phases outside the\n"
            "time-step loop still fork, amortized over Steps); the fork/join\n"
            "round trips removed by fusion reappear as in-region barrier time,\n"
            "which is what the barrier columns compare.  LU is fused in both\n"
            "modes (its pipelined sweeps already require one resident region).");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  warmup_table();
  fusion_table();
  return 0;
}
