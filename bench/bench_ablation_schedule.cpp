// Ablation for the loop-schedule subsystem (paper section 5.2's load-balance
// discussion): the paper's Java translation pins every parallel loop to a
// static block partition, which is the right call for the structured-grid
// codes but leaves the imbalance-sensitive loops (CG's sparse mat-vec rows,
// IS's histogram phases, MG's small coarse levels, EP's trailing blocks) at
// the mercy of the slowest rank.  This bench quantifies what chunked-dynamic
// and guided self-scheduling buy (or cost) relative to that baseline:
//
//   - BM_TriangularLoop: a synthetic loop whose iteration i costs O(i), the
//     textbook worst case for static block partitioning — dynamic/guided
//     should approach perfect balance while static wastes ~25% of the team;
//   - BM_UniformLoop: the opposite extreme (uniform cost), where static is
//     optimal and the measured gap is pure chunk-claim overhead;
//   - a post-benchmark table running CG/IS/MG/EP under each schedule kind,
//     reporting seconds and the obs layer's max/mean per-rank iteration
//     imbalance (team/loop_iters).
//
// google-benchmark binary; --class= and --threads= (bench_util flags) are
// consumed after benchmark::Initialize strips its own flags.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "npb/registry.hpp"
#include "par/parallel_for.hpp"
#include "par/team.hpp"

namespace {

npb::Schedule schedule_for(long kind) {
  switch (kind) {
    case 1: return npb::Schedule::dynamic();
    case 2: return npb::Schedule::guided();
    default: return npb::Schedule::static_();
  }
}

/// O(i) work for iteration i; the sink defeats dead-code elimination.
double triangle_work(long i) {
  double acc = 0.0;
  for (long k = 0; k < i; ++k) acc += static_cast<double>(k) * 1.0e-9;
  return acc;
}

void BM_TriangularLoop(benchmark::State& state) {
  const npb::Schedule sched = schedule_for(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  const long n = 4096;
  npb::WorkerTeam team(nthreads);
  std::vector<npb::detail::PaddedDouble> sink(static_cast<std::size_t>(nthreads));
  for (auto _ : state) {
    npb::parallel_ranges(team, sched, 0, n, [&](int rank, long lo, long hi) {
      for (long i = lo; i < hi; ++i)
        sink[static_cast<std::size_t>(rank)].v += triangle_work(i);
    });
  }
  benchmark::DoNotOptimize(sink.data());
  state.counters["iters/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(npb::to_string(sched.kind));
}
BENCHMARK(BM_TriangularLoop)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

void BM_UniformLoop(benchmark::State& state) {
  const npb::Schedule sched = schedule_for(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  const long n = 1L << 16;
  npb::WorkerTeam team(nthreads);
  std::vector<npb::detail::PaddedDouble> sink(static_cast<std::size_t>(nthreads));
  for (auto _ : state) {
    npb::parallel_ranges(team, sched, 0, n, [&](int rank, long lo, long hi) {
      for (long i = lo; i < hi; ++i)
        sink[static_cast<std::size_t>(rank)].v += static_cast<double>(i) * 1.0e-9;
    });
  }
  benchmark::DoNotOptimize(sink.data());
  state.counters["iters/s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(npb::to_string(sched.kind));
}
BENCHMARK(BM_UniformLoop)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// Kernel table: seconds and per-rank iteration imbalance for the four
/// benchmarks whose loops honor RunConfig::schedule.
void schedule_table(const npb::benchutil::Args& args) {
  int threads = 0;
  for (int t : args.threads) threads = t > threads ? t : threads;
  if (threads <= 0) threads = 4;

  const npb::Schedule kinds[] = {npb::Schedule::static_(),
                                 npb::Schedule::dynamic(),
                                 npb::Schedule::guided()};
  const char* names[] = {"cg", "is", "mg", "ep"};

  npb::Table t("Schedule ablation: seconds (imbalance = max/mean rank iters), " +
               std::to_string(threads) + " threads, class " +
               std::string(npb::to_string(args.cls)));
  t.set_header({"Benchmark", "static", "dynamic", "guided"});
  for (const char* name : names) {
    const npb::RunFn fn = npb::find_benchmark(name);
    std::vector<std::string> row{npb::benchutil::label(name, args.cls)};
    for (const npb::Schedule& sched : kinds) {
      npb::RunConfig cfg;
      cfg.cls = args.cls;
      cfg.threads = threads;
      cfg.warmup_spins = args.warmup ? 1000000 : 0;
      cfg.schedule = sched;
      cfg.mem = args.mem;
      const npb::RunResult r = npb::run_instrumented(fn, cfg);
      if (!r.verified) {
        row.push_back("FAILED");
        continue;
      }
      char cell[64];
      std::snprintf(cell, sizeof cell, "%.3f (%.2f)", r.seconds,
                    r.obs.loop_imbalance());
      row.push_back(cell);
    }
    t.add_row(row);
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("Imbalance 1.00 = perfectly even rank iteration counts; static's\n"
            "figure is fixed by the partition while dynamic/guided trade a\n"
            "chunk-claim atomic per chunk for the freedom to rebalance.");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  const npb::benchutil::Args args = npb::benchutil::parse(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  schedule_table(args);
  return 0;
}
