// Regenerates Table 1 of the paper: execution times of the five basic CFD
// operations, comparing the f77 stand-in (native mode) against the Java
// stand-in (java mode) serially and at increasing thread counts.
//
// Paper reference (SGI Origin2000, 81x81x100 grid):
//   Java serial is 3.3x (Assignment) to 12.4x (Second Order Stencil) slower
//   than f77; thread overhead <= 20%; 16-thread speedup 5-7.
//
// Flags: --threads=0,1,2,...   --reps=N   (grid fixed at the paper's size)

#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "cfdops/cfdops.hpp"
#include "common/table.hpp"

namespace {

constexpr npb::CfdOp kOps[] = {npb::CfdOp::Assignment, npb::CfdOp::FirstOrderStencil,
                               npb::CfdOp::SecondOrderStencil, npb::CfdOp::MatVec,
                               npb::CfdOp::ReductionSum};

}  // namespace

int main(int argc, char** argv) {
  npb::benchutil::Args defaults;
  defaults.threads = {0, 1, 2, 4};
  npb::benchutil::Args args = npb::benchutil::parse(argc, argv, defaults);
  int reps = 10;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);

  npb::Table t(
      "Table 1. Execution times in seconds of the basic CFD operations\n"
      "(grid 81x81x100, 5x5 matrices, 5-D vectors; " +
      std::to_string(reps) + " repetitions per cell)");
  std::vector<std::string> header{"Operation", "f77", "vec", "Java serial"};
  for (int th : args.threads)
    if (th > 0) header.push_back(std::to_string(th) + "thr");
  header.push_back("Java/f77");
  header.push_back("f77/vec");
  t.set_header(header);

  for (npb::CfdOp op : kOps) {
    npb::CfdConfig cfg;
    cfg.reps = reps;
    cfg.mem = args.mem;
    cfg.mode = npb::Mode::Native;
    cfg.threads = 0;
    const double f77 = npb::run_cfd_op(op, cfg).seconds;

    cfg.mode = npb::Mode::Vec;
    const double vec = npb::run_cfd_op(op, cfg).seconds;

    cfg.mode = npb::Mode::Java;
    const double jser = npb::run_cfd_op(op, cfg).seconds;

    std::vector<std::string> row{npb::to_string(op), npb::Table::cell(f77, 3),
                                 npb::Table::cell(vec, 3),
                                 npb::Table::cell(jser, 3)};
    for (int th : args.threads) {
      if (th <= 0) continue;
      cfg.threads = th;
      row.push_back(npb::Table::cell(npb::run_cfd_op(op, cfg).seconds, 3));
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.1f", jser / f77);
    row.push_back(ratio);
    std::snprintf(ratio, sizeof ratio, "%.2f", f77 / vec);
    row.push_back(ratio);
    t.add_row(row);
    std::fprintf(stderr, "%s done\n", npb::to_string(op));
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nPaper (Origin2000): Java/f77 ratios 3.3 (Assignment) .. 12.4 (2nd-order\n"
            "stencil); the computationally dense ops sit at the high end because\n"
            "bounds checks suppress regular-stride optimization.  The vec column\n"
            "is this repo's extra question: what explicit SIMD recovers beyond\n"
            "the autovectorized native kernels (f77/vec > 1 means vec is faster).");
  return 0;
}
