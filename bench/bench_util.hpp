#pragma once

// Shared argument handling for the paper-table bench binaries.  Every table
// bench accepts:
//   --class=S|W|A|B|C        problem class (default S so the whole bench
//                            directory runs in minutes on a laptop; the
//                            paper reports class A — pass --class=A to
//                            regenerate at full size)
//   --threads=0,1,2,4        thread counts; 0 means the serial code path
//   --warmup                 enable the paper's CG thread warm-up fix
//   --schedule=SPEC          loop schedule for CG/IS/MG/EP threaded loops:
//                            static | dynamic[,CHUNK] | guided[,MIN_CHUNK]
//   --mem-align=BYTES        allocation alignment (power of two, K/M suffix)
//   --first-touch            initialize large arrays on the worker team
//   --huge-pages             2 MiB page hint for buffers that large
//   --obs-report=FILE        write an observability report of every run to
//                            FILE (JSON, or CSV when FILE ends in .csv)
// plus NPB_CLASS / NPB_THREADS environment variables as fallbacks.

#include <string>
#include <vector>

#include "common/classes.hpp"
#include "mem/options.hpp"
#include "npb/run.hpp"
#include "obs/report.hpp"

namespace npb::benchutil {

struct Args {
  ProblemClass cls = ProblemClass::S;
  std::vector<int> threads{0, 1, 2};
  bool warmup = false;
  Schedule schedule{};     ///< loop schedule forwarded to RunConfig
  mem::MemOptions mem{};   ///< allocation policy forwarded to RunConfig
  std::string obs_report;  ///< empty = no report
};

Args parse(int argc, char** argv, Args defaults = {});

/// "BT.A" style row label.
std::string label(const std::string& name, ProblemClass cls);

/// Runs one config and returns seconds, or -1 with a stderr note when the
/// run fails verification (so tables show "-" rather than silent bad data).
/// When `report` is non-null the run is instrumented and its region/team
/// snapshot is appended to the report.
double timed_run(RunResult (*fn)(const RunConfig&), const RunConfig& cfg,
                 obs::ObsReport* report = nullptr);

/// Writes `report` to args.obs_report if one was requested; prints the
/// destination to stderr so table output stays clean.
void maybe_write_report(const Args& args, const obs::ObsReport& report);

}  // namespace npb::benchutil
