#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "npb/registry.hpp"

namespace npb::benchutil {
namespace {

std::vector<int> parse_threads(const char* spec) {
  std::vector<int> out;
  const char* p = spec;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    out.push_back(static_cast<int>(v));
    p = *end == ',' ? end + 1 : end;
  }
  return out;
}

}  // namespace

Args parse(int argc, char** argv, Args defaults) {
  Args a = defaults;
  if (const char* env = std::getenv("NPB_CLASS")) {
    if (const auto c = parse_class(env)) a.cls = *c;
  }
  if (const char* env = std::getenv("NPB_THREADS")) {
    const auto t = parse_threads(env);
    if (!t.empty()) a.threads = t;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--class=", 8) == 0) {
      if (const auto c = parse_class(arg + 8)) {
        a.cls = *c;
      } else {
        std::fprintf(stderr, "unknown class '%s'\n", arg + 8);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      const auto t = parse_threads(arg + 10);
      if (!t.empty()) a.threads = t;
    } else if (std::strcmp(arg, "--warmup") == 0) {
      a.warmup = true;
    } else if (std::strncmp(arg, "--schedule=", 11) == 0) {
      if (const auto s = parse_schedule(arg + 11)) {
        a.schedule = *s;
      } else {
        std::fprintf(stderr, "unknown schedule '%s'\n", arg + 11);
      }
    } else if (std::strncmp(arg, "--mem-align=", 12) == 0) {
      if (const auto al = mem::parse_alignment(arg + 12)) {
        a.mem.alignment = *al;
      } else {
        std::fprintf(stderr, "bad alignment '%s'\n", arg + 12);
      }
    } else if (std::strcmp(arg, "--first-touch") == 0) {
      a.mem.placement = mem::Placement::FirstTouch;
    } else if (std::strcmp(arg, "--huge-pages") == 0) {
      a.mem.huge_pages = true;
    } else if (std::strncmp(arg, "--obs-report=", 13) == 0) {
      a.obs_report = arg + 13;
    } else {
      std::fprintf(stderr, "ignoring unknown argument '%s'\n", arg);
    }
  }
  return a;
}

std::string label(const std::string& name, ProblemClass cls) {
  return name + "." + to_string(cls);
}

double timed_run(RunResult (*fn)(const RunConfig&), const RunConfig& cfg,
                 obs::ObsReport* report) {
  const RunResult r =
      report != nullptr ? run_instrumented(fn, cfg) : fn(cfg);
  if (report != nullptr)
    report->add_run(r.name, to_string(r.cls), to_string(r.mode), r.threads,
                    r.seconds, r.obs);
  if (!r.verified) {
    std::fprintf(stderr, "VERIFICATION FAILED: %s.%s %s threads=%d\n%s\n",
                 r.name.c_str(), to_string(r.cls), to_string(r.mode), r.threads,
                 r.verify_detail.c_str());
    return -1.0;
  }
  return r.seconds;
}

void maybe_write_report(const Args& args, const obs::ObsReport& report) {
  if (args.obs_report.empty()) return;
  if (report.write(args.obs_report))
    std::fprintf(stderr, "obs report (%zu runs) -> %s\n", report.size(),
                 args.obs_report.c_str());
}

}  // namespace npb::benchutil
