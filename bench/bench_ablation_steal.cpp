// Ablation for the task-runtime personality: what does work stealing buy
// (or cost) against the SPMD chunk-queue on the same WorkerTeam threads?
// The irregular suite (SORT's data-driven buckets, KNN's variable ring
// searches, GETRF's shrinking trailing updates) is where stealing should
// win or tie; CG rides along as the regular-NPB control, where the steal
// personality is expected to cost a little (fork/join overhead on loops the
// chunk queue already balances).
//
//   - BM_Workload: google-benchmark timings for every
//     (workload x runtime x threads) cell — the machine-readable artifact
//     via --benchmark_out=...json;
//   - a post-benchmark table of seconds plus the obs layer's steal counters
//     (steals/attempts), so the overhead column comes with its explanation.
//
// bench_util flags (--class=, --threads=) are consumed after
// benchmark::Initialize strips its own.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/mode.hpp"
#include "common/table.hpp"
#include "irr/irr.hpp"
#include "npb/registry.hpp"

namespace {

struct Workload {
  const char* name;
  npb::RunFn fn;
};

const Workload kWorkloads[] = {
    {"SORT", &npb::run_sort},
    {"KNN", &npb::run_knn},
    {"GETRF", &npb::run_getrf_irr},
    {"CG", nullptr},  // resolved from the regular registry at startup
};

npb::RunFn workload_fn(long idx) {
  const Workload& w = kWorkloads[idx];
  return w.fn != nullptr ? w.fn : npb::find_benchmark("cg");
}

void BM_Workload(benchmark::State& state) {
  const npb::RunFn fn = workload_fn(state.range(0));
  const npb::Runtime rt =
      state.range(1) == 0 ? npb::Runtime::Spmd : npb::Runtime::Steal;
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.threads = static_cast<int>(state.range(2));
  cfg.runtime = rt;
  for (auto _ : state) {
    const npb::RunResult r = fn(cfg);
    if (!r.verified) state.SkipWithError("verification failed");
    benchmark::DoNotOptimize(r.seconds);
  }
  state.SetLabel(std::string(kWorkloads[state.range(0)].name) + "/" +
                 npb::to_string(rt));
}
BENCHMARK(BM_Workload)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}, {1, 2, 3, 7}})
    ->Unit(benchmark::kMillisecond);

/// Kernel table: spmd vs steal seconds side by side per thread count, with
/// the steal personality's counter totals, for the human-readable summary.
void steal_table(const npb::benchutil::Args& args) {
  npb::Table t("Runtime ablation: seconds spmd / steal (steals:attempts), "
               "class " + std::string(npb::to_string(args.cls)));
  t.set_header({"Workload", "t=1", "t=2", "t=3", "t=7"});
  for (const Workload& w : kWorkloads) {
    const npb::RunFn fn = w.fn != nullptr ? w.fn : npb::find_benchmark("cg");
    std::vector<std::string> row{w.name};
    for (const int threads : {1, 2, 3, 7}) {
      npb::RunConfig cfg;
      cfg.cls = args.cls;
      cfg.threads = threads;
      cfg.warmup_spins = args.warmup ? 1000000 : 0;
      cfg.mem = args.mem;
      cfg.runtime = npb::Runtime::Spmd;
      const npb::RunResult spmd = npb::run_instrumented(fn, cfg);
      cfg.runtime = npb::Runtime::Steal;
      const npb::RunResult steal = npb::run_instrumented(fn, cfg);
      if (!spmd.verified || !steal.verified) {
        row.push_back("FAILED");
        continue;
      }
      char cell[96];
      std::snprintf(cell, sizeof cell, "%.3f / %.3f (%.0f:%.0f)",
                    spmd.seconds, steal.seconds,
                    steal.obs.steal_steals_total,
                    steal.obs.steal_attempts_total);
      row.push_back(cell);
    }
    t.add_row(row);
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("CG is the regular-NPB control: its loops ignore the runtime\n"
            "switch (0:0 steals), so any delta there is measurement noise.\n"
            "The irregular rows run their task-forking personality under\n"
            "steal and the chunk-queue collectives under spmd.");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  const npb::benchutil::Args args = npb::benchutil::parse(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  steal_table(args);
  return 0;
}
