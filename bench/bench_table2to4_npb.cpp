// Regenerates the Table 2-4 family of the paper: full NPB benchmark times,
// Java vs the compiled-language comparator, serial and threaded.  The paper
// ran the same table on three SMPs (IBM p690, SGI Origin2000, SUN E10000);
// this harness produces one instance of that family for the host it runs on.
//
// Rows per benchmark:
//   <name>.<cls> Java     - java mode: serial, then each thread count
//   <name>.<cls> native   - the f77/C-OpenMP comparator row
// The trailing block reproduces the section 5.1 analysis: serial Java/native
// ratios split into structured-grid vs unstructured benchmarks, and the
// section 5.2 thread-overhead figures (1 thread vs serial).
//
// Flags: --class=S|W|A   --threads=0,1,2,...   --warmup
// Default class S so the full bench directory stays fast; the paper's size
// is --class=A.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "npb/registry.hpp"

int main(int argc, char** argv) {
  using namespace npb;
  const benchutil::Args args = benchutil::parse(argc, argv);

  // With --obs-report=FILE every run goes through run_instrumented and its
  // per-region / team-counter snapshot lands in the report.
  obs::ObsReport report;
  obs::ObsReport* const rp = args.obs_report.empty() ? nullptr : &report;

  Table t("Tables 2-4. Benchmark times in seconds (this host; Java-mode vs "
          "native-mode rows; class " +
          std::string(to_string(args.cls)) + ")");
  std::vector<std::string> header{"Benchmark", "Serial"};
  for (int th : args.threads)
    if (th > 0) header.push_back(std::to_string(th));
  t.set_header(header);

  struct Ratios {
    double serial_ratio = 0.0;
    double thread1_overhead = 0.0;
    bool structured = false;
  };
  std::map<std::string, Ratios> analysis;

  for (const auto& info : suite()) {
    RunConfig cfg;
    cfg.cls = args.cls;
    cfg.warmup_spins = args.warmup ? 1000000 : 0;
    cfg.schedule = args.schedule;
    cfg.mem = args.mem;

    cfg.mode = Mode::Java;
    cfg.threads = 0;
    const double jser = benchutil::timed_run(info.fn, cfg, rp);
    std::vector<std::string> jrow{benchutil::label(info.name, args.cls) + " Java",
                                  Table::cell(jser)};
    double j1 = -1.0;
    for (int th : args.threads) {
      if (th <= 0) continue;
      cfg.threads = th;
      const double s = benchutil::timed_run(info.fn, cfg, rp);
      if (th == 1) j1 = s;
      jrow.push_back(Table::cell(s));
    }
    t.add_row(jrow);

    cfg.mode = Mode::Native;
    cfg.threads = 0;
    const double nser = benchutil::timed_run(info.fn, cfg, rp);
    std::vector<std::string> nrow{benchutil::label(info.name, args.cls) + " native",
                                  Table::cell(nser)};
    for (int th : args.threads) {
      if (th <= 0) continue;
      cfg.threads = th;
      nrow.push_back(Table::cell(benchutil::timed_run(info.fn, cfg, rp)));
    }
    t.add_row(nrow);
    t.add_separator();

    Ratios r;
    r.serial_ratio = (jser > 0 && nser > 0) ? jser / nser : 0.0;
    r.thread1_overhead = (jser > 0 && j1 > 0) ? (j1 - jser) / jser : 0.0;
    r.structured = info.structured_grid;
    analysis[info.name] = r;
    std::fprintf(stderr, "%s done\n", info.name);
  }
  std::fputs(t.render().c_str(), stdout);

  // Section 5.1: the structured/unstructured ratio split.
  double smin = 1e300, smax = 0, umin = 1e300, umax = 0;
  std::puts("\nSection 5.1 analysis - serial Java/native time ratio:");
  for (const auto& [name, r] : analysis) {
    if (r.serial_ratio <= 0) continue;
    std::printf("  %-3s %5.2f  (%s)\n", name.c_str(), r.serial_ratio,
                r.structured ? "structured grid" : "unstructured");
    auto& mn = r.structured ? smin : umin;
    auto& mx = r.structured ? smax : umax;
    mn = std::min(mn, r.serial_ratio);
    mx = std::max(mx, r.serial_ratio);
  }
  std::printf("  structured-grid group ratio range:   %.2f - %.2f (paper: 2.6-10)\n",
              smin, smax);
  std::printf("  unstructured group ratio range:      %.2f - %.2f (paper: 1.5-3.5)\n",
              umin, umax);

  // Section 5.2: multithreading overhead (1 worker thread vs plain serial).
  std::puts("\nSection 5.2 analysis - threading overhead (1 thread vs serial):");
  for (const auto& [name, r] : analysis)
    std::printf("  %-3s %+5.1f%%\n", name.c_str(), 100.0 * r.thread1_overhead);
  std::puts("  (paper: multithreading introduces an overhead of about 10%-20%)");

  benchutil::maybe_write_report(args, report);
  return 0;
}
