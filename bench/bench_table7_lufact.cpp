// Regenerates Table 7 of the paper: the Java Grande `lufact` benchmark
// (BLAS-1 LU, poor cache reuse) against its direct Fortran translation and
// against a LINPACK DGETRF-style blocked LU, for classes A (500x500),
// B (1000x1000) and C (2000x2000).
//
// The paper's point: lufact's BLAS-1 structure stalls on cache misses in
// every language, so it measures the memory system rather than the
// compiler — which is why the Java Grande suite reports Java within 2x of
// Fortran while the NPB (Tables 2-4) show far larger gaps.  DGETRF's
// blocked MMULT update exposes the compiler again.
//
// Flags: --skip-c            (omit the 2000x2000 column for quick runs)
//        --mem-align=BYTES / --huge-pages
//                             allocation policy for the matrix buffers
//                             (serial bench, so --first-touch is moot)

#include <cstdio>
#include <cstring>

#include "common/classes.hpp"
#include "common/table.hpp"
#include "lufact/lufact.hpp"

int main(int argc, char** argv) {
  using namespace npb;
  bool skip_c = false;
  mem::MemOptions memopt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--skip-c") == 0) skip_c = true;
    if (std::strncmp(argv[i], "--mem-align=", 12) == 0) {
      if (const auto al = mem::parse_alignment(argv[i] + 12))
        memopt.alignment = *al;
    }
    if (std::strcmp(argv[i], "--huge-pages") == 0) memopt.huge_pages = true;
  }

  std::vector<ProblemClass> classes{ProblemClass::A, ProblemClass::B};
  if (!skip_c) classes.push_back(ProblemClass::C);

  Table t("Table 7. Java Grande LU benchmark: execution time in seconds\n"
          "(classes A, B, C = 500, 1000, 2000 square; Java = checked/no-FMA "
          "mode, f77 = native mode)");
  std::vector<std::string> header{"Algorithm/Language"};
  for (ProblemClass c : classes) header.push_back(to_string(c));
  t.set_header(header);

  struct Row {
    const char* label;
    Mode mode;
    LuAlgorithm alg;
  };
  const Row rows[] = {
      {"lufact Java", Mode::Java, LuAlgorithm::Blas1},
      {"lufact f77", Mode::Native, LuAlgorithm::Blas1},
      {"DGETRF Java", Mode::Java, LuAlgorithm::Blocked},
      {"DGETRF f77 (LINPACK)", Mode::Native, LuAlgorithm::Blocked},
  };

  double mflops[4][3] = {};
  int ri = 0;
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.label};
    int ci = 0;
    for (ProblemClass c : classes) {
      LufactConfig cfg;
      cfg.n = lufact_order(c);
      cfg.mode = row.mode;
      cfg.alg = row.alg;
      cfg.mem = memopt;
      const LufactResult r = run_lufact(cfg);
      if (r.residual_normalized > 100.0) {
        std::fprintf(stderr, "RESIDUAL CHECK FAILED: %s class %s (%.1f)\n",
                     row.label, to_string(c), r.residual_normalized);
        cells.push_back("-");
      } else {
        cells.push_back(Table::cell(r.seconds, 3));
        mflops[ri][ci] = r.mflops;
      }
      ++ci;
    }
    t.add_row(cells);
    std::fprintf(stderr, "%s done\n", row.label);
    ++ri;
  }
  std::fputs(t.render().c_str(), stdout);

  std::puts("\nMflop/s (2/3 n^3 flops):");
  ri = 0;
  for (const Row& row : rows) {
    std::printf("  %-22s", row.label);
    for (std::size_t ci = 0; ci < classes.size(); ++ci)
      std::printf("  %8.1f", mflops[ri][ci]);
    std::puts("");
    ++ri;
  }
  std::puts("\nExpected shape (paper): Java/f77 gap is small for lufact (memory\n"
            "bound, ~the Assignment basic op) and larger for DGETRF; DGETRF beats\n"
            "lufact increasingly with matrix size thanks to cache reuse.");
  return 0;
}
