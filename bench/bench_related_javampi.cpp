// The related-work comparison (paper section 6): the Westminster group
// implemented FT and IS over javampi (MPI bindings) rather than Java
// threads.  This bench runs both programming models on the same problems:
//   - shared memory: the paper's master-workers translation (run_ft/run_is);
//   - message passing: slab-decomposed FT with distributed transposes and
//     histogram-allreduce IS over the in-process MPI-style runtime.
// Both verify against the same frozen references, so the table compares
// communication models, not implementations.
//
// Flags: --class=S|W|A   --threads=1,2,4 (rank counts; must divide FT's n1/n2)

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "cg/cg.hpp"
#include "ep/ep.hpp"
#include "ft/ft.hpp"
#include "is/is.hpp"
#include "msg/ep_cg_mpi.hpp"
#include "msg/ft_mpi.hpp"
#include "msg/is_mpi.hpp"

int main(int argc, char** argv) {
  using namespace npb;
  benchutil::Args defaults;
  defaults.threads = {1, 2, 4};
  const benchutil::Args args = benchutil::parse(argc, argv, defaults);

  Table t("Related work: Java-threads translation vs javampi-style message\n"
          "passing, FT/IS/EP/CG (class " +
          std::string(to_string(args.cls)) + ", seconds)");
  std::vector<std::string> header{"Benchmark/model"};
  for (int th : args.threads)
    if (th > 0) header.push_back(std::to_string(th));
  t.set_header(header);

  auto threads_row = [&](const char* name, RunResult (*fn)(const RunConfig&)) {
    std::vector<std::string> row{std::string(name) + " threads"};
    for (int th : args.threads) {
      if (th <= 0) continue;
      RunConfig cfg;
      cfg.cls = args.cls;
      cfg.mode = Mode::Native;
      cfg.mem = args.mem;
      cfg.threads = th;
      row.push_back(Table::cell(benchutil::timed_run(fn, cfg)));
    }
    t.add_row(row);
  };
  auto mpi_row = [&](const char* name, RunResult (*fn)(ProblemClass, int)) {
    std::vector<std::string> row{std::string(name) + " message-passing"};
    for (int th : args.threads) {
      if (th <= 0) continue;
      double secs = -1.0;
      try {
        const RunResult r = fn(args.cls, th);
        if (r.verified) {
          secs = r.seconds;
        } else {
          std::fprintf(stderr, "VERIFICATION FAILED: %s mpi ranks=%d\n%s\n", name,
                       th, r.verify_detail.c_str());
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s mpi ranks=%d skipped: %s\n", name, th, e.what());
      }
      row.push_back(Table::cell(secs));
    }
    t.add_row(row);
  };

  threads_row("FT", &run_ft);
  mpi_row("FT", &msg::run_ft_mpi);
  t.add_separator();
  threads_row("IS", &run_is);
  mpi_row("IS", &msg::run_is_mpi);
  t.add_separator();
  threads_row("EP", &run_ep);
  mpi_row("EP", &msg::run_ep_mpi);
  t.add_separator();
  threads_row("CG", &run_cg);
  mpi_row("CG", &msg::run_cg_mpi);

  std::fputs(t.render().c_str(), stdout);
  std::puts("\nMessage passing pays explicit pack/exchange/unpack (FT: two\n"
            "transposes per timestep; IS: a histogram allreduce per ranking)\n"
            "where the threaded translation reads shared arrays in place — the\n"
            "cost the javampi ports accepted for distributed-memory portability.");
  return 0;
}
