// Load generator for the job-scheduler service: synthesizes a deterministic
// mixed stream of class-S jobs (every benchmark, widths 0..3, all schedules,
// a vec column, optionally one persistently-faulted job), pushes them through
// JobScheduler concurrently, and prints / writes the service-level JSON.
//
// Used by CI's soak job under ASan, and by hand to size pools:
//   bench_service_load --jobs=32 --pool=1,2,3 --faulted \
//       --service-report=service.json
//
// The spec stream is a pure function of --seed, so two runs with the same
// flags produce the same job mix (queueing order and timings still vary).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "npb/registry.hpp"
#include "svc/report.hpp"
#include "svc/scheduler.hpp"

namespace {

struct Options {
  int jobs = 32;
  std::vector<int> pool{1, 2, 3};
  npb::ProblemClass cls = npb::ProblemClass::S;
  std::uint64_t seed = 12345;
  bool faulted = false;
  std::size_t queue_cap = 64;
  std::string service_report;
};

// xorshift64*: tiny deterministic PRNG; avoids <random> distribution
// differences across libstdc++ versions.
std::uint64_t next_rand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

std::vector<npb::svc::JobSpec> make_jobs(const Options& opt) {
  static const char* kBench[] = {"EP", "IS", "CG", "MG", "FT", "BT", "SP", "LU"};
  static const npb::Schedule kSchedules[] = {
      npb::Schedule{},
      npb::Schedule{npb::Schedule::Kind::Dynamic, 64},
      npb::Schedule{npb::Schedule::Kind::Guided, 1},
  };
  std::uint64_t state = opt.seed != 0 ? opt.seed : 1;
  std::vector<npb::svc::JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(opt.jobs));
  for (int i = 0; i < opt.jobs; ++i) {
    npb::svc::JobSpec spec;
    spec.id = "load-" + std::to_string(i);
    spec.benchmark = kBench[next_rand(state) % 8];
    spec.cfg.cls = opt.cls;
    spec.cfg.threads = static_cast<int>(next_rand(state) % 4);  // 0..3
    spec.cfg.schedule = kSchedules[next_rand(state) % 3];
    spec.cfg.fused = (next_rand(state) % 4) != 0;  // mostly fused
    // EP has a vec kernel at every class; give ~1 in 8 jobs the vec mode.
    if (spec.benchmark == std::string("EP") && next_rand(state) % 2 == 0)
      spec.cfg.mode = npb::Mode::Vec;
    specs.push_back(std::move(spec));
  }
  if (opt.faulted && !specs.empty()) {
    // One persistently-faulted job: rank 1 of its team throws at every step,
    // so retries exhaust and the job degrades to a shrunken team.  Routed
    // through the job-local injector, it must not perturb its neighbours.
    npb::svc::JobSpec& victim = specs[specs.size() / 2];
    victim.id += "-faulted";
    victim.benchmark = "CG";
    victim.cfg.mode = npb::Mode::Native;
    victim.cfg.threads = 3;
    const auto fault = npb::fault::parse_fault_spec("region:throw:*:1:0:persist");
    victim.cfg.fault.specs.push_back(*fault);
    victim.cfg.fault.max_retries = 1;
    victim.cfg.fault.backoff_ms = 0;
  }
  return specs;
}

bool parse_int(const char* s, int& out) {
  if (*s == '\0' || std::strlen(s) > 9) return false;
  int v = 0;
  for (; *s != '\0'; ++s) {
    if (*s < '0' || *s > '9') return false;
    v = v * 10 + (*s - '0');
  }
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    int v = 0;
    if (std::strncmp(a, "--jobs=", 7) == 0 && parse_int(a + 7, v) && v > 0) {
      opt.jobs = v;
    } else if (std::strncmp(a, "--pool=", 7) == 0) {
      opt.pool.clear();
      std::string tok;
      for (const char* p = a + 7;; ++p) {
        if (*p != '\0' && *p != ',') {
          tok += *p;
          continue;
        }
        if (!parse_int(tok.c_str(), v) || v > 32) return false;
        opt.pool.push_back(v);
        tok.clear();
        if (*p == '\0') break;
      }
      if (opt.pool.empty()) return false;
    } else if (std::strncmp(a, "--class=", 8) == 0) {
      const auto c = npb::parse_class(a + 8);
      if (!c) return false;
      opt.cls = *c;
    } else if (std::strncmp(a, "--seed=", 7) == 0 && parse_int(a + 7, v)) {
      opt.seed = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(a, "--faulted") == 0) {
      opt.faulted = true;
    } else if (std::strncmp(a, "--queue-cap=", 12) == 0 &&
               parse_int(a + 12, v) && v > 0) {
      opt.queue_cap = static_cast<std::size_t>(v);
    } else if (std::strncmp(a, "--service-report=", 17) == 0) {
      opt.service_report = a + 17;
    } else {
      std::fprintf(stderr, "unknown or bad argument '%s'\n", a);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    std::fputs(
        "usage: bench_service_load [--jobs=N] [--pool=W,W,...] [--class=S|W|A]\n"
        "                          [--seed=N] [--faulted] [--queue-cap=N]\n"
        "                          [--service-report=FILE]\n",
        stderr);
    return 2;
  }

  const std::vector<npb::svc::JobSpec> specs = make_jobs(opt);
  npb::svc::SchedulerOptions sched_opts;
  sched_opts.pool_widths = opt.pool;
  sched_opts.queue_capacity = opt.queue_cap;
  npb::svc::JobScheduler scheduler(sched_opts);
  for (const auto& spec : specs) scheduler.submit_wait(spec);
  const std::vector<npb::svc::JobOutcome> outcomes = scheduler.drain();
  const npb::svc::ServiceStats stats = scheduler.stats();

  int bad = 0;
  for (const auto& out : outcomes) {
    if (out.completed && out.verified) continue;
    // A degraded-but-verified job is a success story; anything else is not.
    std::fprintf(stderr, "job %s: %s\n", out.spec.id.c_str(),
                 out.error.empty() ? "verification failed" : out.error.c_str());
    ++bad;
  }
  std::printf(
      "service load: %d jobs (%llu rejected), %llu completed, %llu degraded, "
      "%llu failed\n"
      "  wall %.3fs  p50 %.3fs  p99 %.3fs  utilization %.1f%%  warm hits "
      "%llu/%llu\n",
      opt.jobs, static_cast<unsigned long long>(stats.jobs_rejected),
      static_cast<unsigned long long>(stats.jobs_completed),
      static_cast<unsigned long long>(stats.jobs_degraded),
      static_cast<unsigned long long>(stats.jobs_failed), stats.wall_seconds,
      stats.latency_p50, stats.latency_p99,
      stats.pool_width > 0 && stats.wall_seconds > 0.0
          ? 100.0 * stats.width_seconds /
                (stats.pool_width * stats.wall_seconds)
          : 0.0,
      static_cast<unsigned long long>(stats.pool.warm_hits),
      static_cast<unsigned long long>(stats.pool.checkouts));

  const npb::json::Value doc = npb::svc::service_json(outcomes, stats);
  if (!opt.service_report.empty()) {
    if (!npb::svc::write_json(doc, opt.service_report)) {
      std::fprintf(stderr, "cannot write '%s'\n", opt.service_report.c_str());
      return 1;
    }
    std::fprintf(stderr, "service report -> %s\n", opt.service_report.c_str());
  }
  return bad == 0 ? 0 : 1;
}
