// Reproduces the section 3 perfex hardware-counter analysis at source level,
// using the Counting access policy:
//   - "the Java/Fortran performance correlates well with the ratio of the
//     total number of executed instructions" — we print per-op access and
//     check counts, whose sum is the instruction-count proxy;
//   - "the Java code executes twice as many floating point instructions as
//     the Fortran code, confirming that the JIT does not use the madd
//     instruction" — we print the flop count with and without fusing the
//     counted multiply-add pairs.

#include <cstdio>

#include "cfdops/cfdops.hpp"
#include "common/table.hpp"

int main() {
  using namespace npb;
  constexpr CfdOp kOps[] = {CfdOp::Assignment, CfdOp::FirstOrderStencil,
                            CfdOp::SecondOrderStencil, CfdOp::MatVec,
                            CfdOp::ReductionSum};

  Table t("Source-level operation profile of the basic CFD ops (one pass,\n"
          "81x81x100 grid) - the perfex analysis of section 3");
  t.set_header({"Operation", "accesses", "checks(Java)", "flops(no madd)",
                "flops(madd)", "FP ratio"});

  CfdConfig cfg;  // paper grid, serial; mode/threads ignored by the profiler
  for (CfdOp op : kOps) {
    const OpCounts c = profile_cfd_op(op, cfg);
    // With madd: each counted multiply-add pair retires as one instruction.
    const auto fused = c.flops - c.muladds;
    char a[32], ch[32], f0[32], f1[32], ratio[32];
    std::snprintf(a, sizeof a, "%llu", static_cast<unsigned long long>(c.accesses));
    std::snprintf(ch, sizeof ch, "%llu", static_cast<unsigned long long>(c.checks));
    std::snprintf(f0, sizeof f0, "%llu", static_cast<unsigned long long>(c.flops));
    std::snprintf(f1, sizeof f1, "%llu", static_cast<unsigned long long>(fused));
    std::snprintf(ratio, sizeof ratio, "%.2f",
                  fused > 0 ? static_cast<double>(c.flops) / static_cast<double>(fused)
                            : 1.0);
    t.add_row({to_string(op), a, ch, f0, f1, ratio});
  }
  std::fputs(t.render().c_str(), stdout);

  // The dimension-preserving translation multiplies the check count.
  Table t2("Bounds checks per element access, by translation option");
  t2.set_header({"Operation", "linearized", "dimensioned"});
  for (CfdOp op : kOps) {
    cfg.shape = ArrayShape::Linearized;
    const OpCounts lin = profile_cfd_op(op, cfg);
    cfg.shape = ArrayShape::Dimensioned;
    const OpCounts md = profile_cfd_op(op, cfg);
    cfg.shape = ArrayShape::Linearized;
    char l[32], m[32];
    std::snprintf(l, sizeof l, "%.2f",
                  static_cast<double>(lin.checks) / static_cast<double>(lin.accesses));
    std::snprintf(m, sizeof m, "%.2f",
                  static_cast<double>(md.checks) / static_cast<double>(md.accesses));
    t2.add_row({to_string(op), l, m});
  }
  std::fputs("\n", stdout);
  std::fputs(t2.render().c_str(), stdout);
  std::puts("\nPaper: Java executed ~2x the FP instructions of Fortran (no madd) and\n"
            "~10x the total instructions on the Origin2000; the FP ratio column is\n"
            "the madd share of that gap, the checks column the bounds-test share.");
  return 0;
}
