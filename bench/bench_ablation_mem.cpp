// Ablation for the memory subsystem (aligned arenas + team-aware first-touch
// placement): on a NUMA machine every page of an array faults into the node
// of the thread that first writes it, so serial initialization puts the whole
// working set next to the master and leaves the other ranks reading remote
// memory for the entire run.  First-touch initialization on the worker team
// — using the same schedule/partition as the compute loops — places each
// rank's slice locally instead.  This bench quantifies the effect:
//
//   - BM_PlaceFill: raw fill bandwidth of mem::place_fill over a 64 MiB
//     buffer, serial vs. team first-touch, isolating the placement machinery
//     from any benchmark kernel;
//   - a post-benchmark table running FT, MG and CG (the bandwidth-bound
//     kernels) under serial, first-touch, and first-touch + huge-page
//     placement across thread counts, reporting seconds and the obs layer's
//     first-touch time so the placement cost is visible next to its payoff.
//
// Checksums are placement-invariant by construction (the fill values never
// depend on which thread writes them), so timed_run's verification doubles
// as the bit-identity check.
//
// google-benchmark binary; --class= / --threads= / --mem-* (bench_util
// flags) are consumed after benchmark::Initialize strips its own flags.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "mem/buffer.hpp"
#include "mem/mem.hpp"
#include "npb/registry.hpp"
#include "par/team.hpp"

namespace {

void BM_PlaceFill(benchmark::State& state) {
  const bool first_touch = state.range(0) != 0;
  const int nthreads = static_cast<int>(state.range(1));
  const std::size_t n = (64u << 20) / sizeof(double);

  npb::mem::MemOptions opt;
  opt.placement = first_touch ? npb::mem::Placement::FirstTouch
                              : npb::mem::Placement::Serial;
  const npb::mem::ScopedMemConfig mem_scope(opt);
  npb::WorkerTeam team(nthreads);
  const npb::mem::ScopedTeamPlacement placement(&team, npb::Schedule{});

  npb::mem::AlignedBuffer<double> buf(n, npb::mem::uninitialized);
  for (auto _ : state) {
    npb::mem::place_fill(buf.data(), n, 1.0);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * sizeof(double)));
  state.SetLabel(first_touch ? "first_touch" : "serial");
}
BENCHMARK(BM_PlaceFill)
    ->ArgsProduct({{0, 1}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

/// Placement table: FT/MG/CG seconds under each placement policy, with the
/// obs first-touch time in parentheses (what the placement itself cost).
void mem_table(const npb::benchutil::Args& args) {
  struct Policy {
    const char* label;
    npb::mem::MemOptions opt;
  };
  npb::mem::MemOptions serial = args.mem;
  serial.placement = npb::mem::Placement::Serial;
  npb::mem::MemOptions ft = args.mem;
  ft.placement = npb::mem::Placement::FirstTouch;
  npb::mem::MemOptions fth = ft;
  fth.huge_pages = true;
  const Policy policies[] = {{"serial", serial},
                             {"first-touch", ft},
                             {"first-touch+huge", fth}};
  const char* names[] = {"ft", "mg", "cg"};

  std::vector<int> threads;
  for (int t : args.threads)
    if (t > 0) threads.push_back(t);
  if (threads.empty()) threads = {1, 2, 4};

  npb::Table t("Memory placement ablation: seconds (first-touch ms), class " +
               std::string(npb::to_string(args.cls)));
  t.set_header({"Benchmark", "threads", policies[0].label, policies[1].label,
                policies[2].label});
  for (const char* name : names) {
    const npb::RunFn fn = npb::find_benchmark(name);
    for (int th : threads) {
      std::vector<std::string> row{npb::benchutil::label(name, args.cls),
                                   std::to_string(th)};
      for (const Policy& p : policies) {
        npb::RunConfig cfg;
        cfg.cls = args.cls;
        cfg.threads = th;
        cfg.warmup_spins = args.warmup ? 1000000 : 0;
        cfg.schedule = args.schedule;
        cfg.mem = p.opt;
        const npb::RunResult r = npb::run_instrumented(fn, cfg);
        if (!r.verified) {
          row.push_back("FAILED");
          continue;
        }
        char cell[64];
        std::snprintf(cell, sizeof cell, "%.3f (%.1f)", r.seconds,
                      r.obs.first_touch_seconds * 1e3);
        row.push_back(cell);
      }
      t.add_row(row);
    }
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("All three columns verify against the same checksums; differences\n"
            "are pure data-placement effects.  On a single-socket machine the\n"
            "columns should be within noise of each other — the ablation is\n"
            "about NUMA, which needs a multi-socket host to show up.");
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  const npb::benchutil::Args args = npb::benchutil::parse(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  mem_table(args);
  return 0;
}
