// Ablation for the section 3 translation study: linearized arrays vs
// dimension-preserving nested arrays, in both language modes, over the
// stencil/matvec basic operations.  The paper measured the dimension-
// preserving translation 2.3-4.5x slower on the Origin2000 and the SUN
// E10000, which is why NPB3.0-JAV linearizes everything.
//
// google-benchmark binary; pass --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include "cfdops/cfdops.hpp"

namespace {

// A reduced grid keeps each google-benchmark iteration ~tens of ms.
npb::CfdConfig cfg(npb::Mode mode, npb::ArrayShape shape) {
  npb::CfdConfig c;
  c.n1 = 41;
  c.n2 = 41;
  c.n3 = 50;
  c.reps = 1;
  c.mode = mode;
  c.shape = shape;
  c.threads = 0;
  return c;
}

void run_case(benchmark::State& state, npb::CfdOp op, npb::Mode mode,
              npb::ArrayShape shape) {
  const npb::CfdConfig c = cfg(mode, shape);
  double checksum = 0.0;
  for (auto _ : state) {
    const npb::CfdResult r = npb::run_cfd_op(op, c);
    checksum = r.checksum;
    // Report kernel time only: construction/fill is translation-independent.
    state.SetIterationTime(r.seconds);
  }
  benchmark::DoNotOptimize(checksum);
}

#define ABLATION(op_name, op)                                                     \
  void BM_##op_name##_lin_native(benchmark::State& s) {                          \
    run_case(s, op, npb::Mode::Native, npb::ArrayShape::Linearized);             \
  }                                                                              \
  void BM_##op_name##_lin_java(benchmark::State& s) {                           \
    run_case(s, op, npb::Mode::Java, npb::ArrayShape::Linearized);               \
  }                                                                              \
  void BM_##op_name##_md_native(benchmark::State& s) {                          \
    run_case(s, op, npb::Mode::Native, npb::ArrayShape::Dimensioned);            \
  }                                                                              \
  void BM_##op_name##_md_java(benchmark::State& s) {                            \
    run_case(s, op, npb::Mode::Java, npb::ArrayShape::Dimensioned);              \
  }                                                                              \
  BENCHMARK(BM_##op_name##_lin_native)->UseManualTime()->Unit(benchmark::kMillisecond); \
  BENCHMARK(BM_##op_name##_lin_java)->UseManualTime()->Unit(benchmark::kMillisecond);   \
  BENCHMARK(BM_##op_name##_md_native)->UseManualTime()->Unit(benchmark::kMillisecond);  \
  BENCHMARK(BM_##op_name##_md_java)->UseManualTime()->Unit(benchmark::kMillisecond)

ABLATION(Assignment, npb::CfdOp::Assignment);
ABLATION(Stencil1, npb::CfdOp::FirstOrderStencil);
ABLATION(Stencil2, npb::CfdOp::SecondOrderStencil);
ABLATION(MatVec, npb::CfdOp::MatVec);
ABLATION(Reduction, npb::CfdOp::ReductionSum);

}  // namespace

BENCHMARK_MAIN();
