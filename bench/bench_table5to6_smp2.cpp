// Regenerates the Table 5-6 family: the 2-processor desktop shape (Linux
// PIII PC and Apple Xserve G4) — Java-mode times for Serial, 1 and 2
// threads.  The paper's finding on the Linux PC was stark: "we did not
// obtain any speedup on any benchmark when using 2 threads"; on a 1-2 CPU
// container this reproduces directly.
//
// Flags: --class=S|W|A   --warmup

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "npb/registry.hpp"

int main(int argc, char** argv) {
  using namespace npb;
  benchutil::Args defaults;
  defaults.threads = {0, 1, 2};
  const benchutil::Args args = benchutil::parse(argc, argv, defaults);

  obs::ObsReport report;
  obs::ObsReport* const rp = args.obs_report.empty() ? nullptr : &report;

  Table t("Tables 5-6. Benchmark times in seconds, 2-CPU desktop shape "
          "(Java mode, class " +
          std::string(to_string(args.cls)) + ")");
  t.set_header({"Benchmark", "Serial", "1", "2", "speedup(2)"});

  for (const auto& info : suite()) {
    RunConfig cfg;
    cfg.cls = args.cls;
    cfg.mode = Mode::Java;
    cfg.warmup_spins = args.warmup ? 1000000 : 0;
    cfg.mem = args.mem;

    cfg.threads = 0;
    const double ser = benchutil::timed_run(info.fn, cfg, rp);
    cfg.threads = 1;
    const double t1 = benchutil::timed_run(info.fn, cfg, rp);
    cfg.threads = 2;
    const double t2 = benchutil::timed_run(info.fn, cfg, rp);

    char speedup[32];
    if (ser > 0 && t2 > 0) {
      std::snprintf(speedup, sizeof speedup, "%.2f", ser / t2);
    } else {
      std::snprintf(speedup, sizeof speedup, "-");
    }
    t.add_row({benchutil::label(info.name, args.cls), Table::cell(ser),
               Table::cell(t1), Table::cell(t2), speedup});
    std::fprintf(stderr, "%s done\n", info.name);
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nPaper (Linux PC, 2x PIII): no speedup on any benchmark with 2 threads;\n"
            "(Apple Xserve, 2x G4): modest speedups on BT/SP/LU only.");

  benchutil::maybe_write_report(args, report);
  return 0;
}
