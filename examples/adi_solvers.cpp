// The three simulated CFD applications side by side: BT (5x5 block
// tridiagonal ADI), SP (diagonalized scalar pentadiagonal ADI) and LU
// (SSOR with pipelined sweeps) all march the same synthetic 5-component
// convection-diffusion-reaction system to its manufactured steady state —
// so their residual floors are directly comparable, and what differs is
// the implicit solver.
//
//   ./adi_solvers [class] [threads]

#include <cstdio>
#include <cstdlib>

#include "bt/bt.hpp"
#include "lu/lu.hpp"
#include "sp/sp.hpp"

int main(int argc, char** argv) {
  const auto cls = npb::parse_class(argc > 1 ? argv[1] : "S");
  if (!cls) {
    std::fprintf(stderr, "unknown class\n");
    return 1;
  }
  npb::RunConfig cfg;
  cfg.cls = *cls;
  cfg.threads = argc > 2 ? std::atoi(argv[2]) : 0;
  cfg.mode = npb::Mode::Native;

  struct App {
    const char* solver;
    npb::RunResult (*fn)(const npb::RunConfig&);
  };
  const App apps[] = {
      {"ADI, 5x5 block-tridiagonal Thomas solves", &npb::run_bt},
      {"diagonalized ADI, scalar pentadiagonal solves", &npb::run_sp},
      {"SSOR, pipelined lower/upper block sweeps", &npb::run_lu},
  };

  std::printf("Synthetic CFD steady state, class %s, %d thread(s):\n\n",
              npb::to_string(*cls), cfg.threads);
  for (const App& app : apps) {
    const npb::RunResult r = app.fn(cfg);
    double resid = 0.0, err = 0.0;
    for (int m = 0; m < 5; ++m) {
      resid = std::max(resid, r.checksums[static_cast<std::size_t>(m)]);
      err = std::max(err, r.checksums[static_cast<std::size_t>(5 + m)]);
    }
    std::printf("%-3s %-48s %7.2fs  %8.1f Mop/s\n", r.name.c_str(), app.solver,
                r.seconds, r.mops);
    std::printf("    final residual %.2e, error vs exact solution %.2e  [%s]\n",
                resid, err, r.verified ? "verified" : "FAILED");
  }
  std::puts("\nAll three reach the same manufactured solution; BT does the most\n"
            "work per point, SP trades block algebra for characteristic\n"
            "transforms, LU converges in the fewest sweeps but synchronizes\n"
            "inside its wavefront loop (the paper's scalability observation).");
  return 0;
}
