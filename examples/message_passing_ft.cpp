// Using the message-passing runtime directly: a distributed dot product and
// a ring pipeline, then the full javampi-style FT for comparison with the
// threaded version.
//
//   ./message_passing_ft [ranks]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "ft/ft.hpp"
#include "msg/communicator.hpp"
#include "msg/ft_mpi.hpp"

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // 1. Collectives: each rank owns a slice of x and y; dot(x, y) via a
  //    local partial product and one allreduce.
  {
    const long n = 1 << 16;
    std::vector<double> results(static_cast<std::size_t>(ranks));
    npb::msg::World world(ranks);
    world.run([&](npb::msg::Communicator& comm) {
      const long lo = n * comm.rank() / comm.size();
      const long hi = n * (comm.rank() + 1) / comm.size();
      double partial = 0.0;
      for (long i = lo; i < hi; ++i) {
        const double x = 1.0 / static_cast<double>(i + 1);
        const double y = static_cast<double>(i + 1);
        partial += x * y;  // = 1 each; dot == n
      }
      results[static_cast<std::size_t>(comm.rank())] = comm.allreduce_sum(partial);
    });
    std::printf("distributed dot product over %d ranks: %.1f (expected %ld)\n",
                ranks, results[0], n);
  }

  // 2. Point-to-point: a ring that accumulates each rank's contribution.
  {
    std::vector<double> out(1);
    npb::msg::World world(ranks);
    world.run([&](npb::msg::Communicator& comm) {
      double token = 0.0;
      if (comm.rank() == 0) {
        token = 1.0;
        comm.send(1 % comm.size(), 0, std::span<const double>(&token, 1));
        if (comm.size() > 1) {
          comm.recv(comm.size() - 1, 0, std::span<double>(&token, 1));
        }
        out[0] = token;
      } else {
        comm.recv(comm.rank() - 1, 0, std::span<double>(&token, 1));
        token += 1.0;
        comm.send((comm.rank() + 1) % comm.size(), 0,
                  std::span<const double>(&token, 1));
      }
    });
    std::printf("ring accumulation over %d ranks: %.0f (expected %d)\n\n", ranks,
                out[0], ranks);
  }

  // 3. The real thing: FT class S, threads vs message passing.
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.threads = ranks;
  const npb::RunResult threaded = npb::run_ft(cfg);
  std::printf("FT.S shared-memory threads (%d): %.3fs  %s\n", ranks, threaded.seconds,
              threaded.verified ? "verified" : "FAILED");
  if (64 % ranks == 0) {
    const npb::RunResult mpi = npb::msg::run_ft_mpi(npb::ProblemClass::S, ranks);
    std::printf("FT.S message passing (%d ranks):  %.3fs  %s\n", ranks, mpi.seconds,
                mpi.verified ? "verified" : "FAILED");
    std::printf("first checksum: threads %.12e vs mpi %.12e\n", threaded.checksums[0],
                mpi.checksums[0]);
  } else {
    std::printf("(skipping message-passing FT: %d does not divide 64)\n", ranks);
  }
  return 0;
}
