// Quickstart: run one NPB benchmark through the suite API and inspect the
// result.
//
//   ./quickstart [benchmark] [class] [threads]
//   ./quickstart CG A 4
//
// Every benchmark is driven by the same two types: RunConfig selects the
// problem class, language mode (native ~ f77, java ~ the paper's JIT model),
// and worker-thread count; RunResult carries time, Mop/s, checksums and the
// verification verdict.

#include <cstdio>
#include <cstdlib>

#include "npb/registry.hpp"

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "CG";
  const char* cls_text = argc > 2 ? argv[2] : "S";
  const int threads = argc > 3 ? std::atoi(argv[3]) : 0;

  const npb::RunFn fn = npb::find_benchmark(name);
  if (fn == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:", name);
    for (const auto& b : npb::suite()) std::fprintf(stderr, " %s", b.name);
    std::fprintf(stderr, "\n");
    return 1;
  }
  const auto cls = npb::parse_class(cls_text);
  if (!cls) {
    std::fprintf(stderr, "unknown class '%s' (use S, W, A, B or C)\n", cls_text);
    return 1;
  }

  npb::RunConfig cfg;
  cfg.cls = *cls;
  cfg.threads = threads;

  for (const npb::Mode mode : {npb::Mode::Native, npb::Mode::Java}) {
    cfg.mode = mode;
    const npb::RunResult r = fn(cfg);
    std::printf("%s.%s  mode=%-6s threads=%d  time=%.3fs  %.1f Mop/s  %s\n",
                r.name.c_str(), npb::to_string(r.cls), npb::to_string(r.mode),
                r.threads, r.seconds, r.mops,
                r.verified ? "VERIFICATION SUCCESSFUL" : "VERIFICATION FAILED");
    std::printf("  %s", r.verify_detail.c_str());
  }
  return 0;
}
