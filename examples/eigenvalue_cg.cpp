// Estimating the smallest eigenvalue of a random sparse SPD matrix with the
// CG benchmark's shifted inverse power iteration — across problem classes,
// and with the paper's thread warm-up fix toggled.
//
//   ./eigenvalue_cg [threads]

#include <cstdio>
#include <cstdlib>

#include "cg/cg.hpp"

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 2;

  std::puts("CG: zeta = shift + 1/(x'z) after 15 outer iterations of 25 CG steps\n");
  std::printf("%-6s %8s %8s %10s %14s %12s\n", "class", "n", "nonzer", "shift",
              "zeta", "time");
  for (const auto cls : {npb::ProblemClass::S, npb::ProblemClass::W}) {
    const npb::CgParams p = npb::cg_params(cls);
    npb::RunConfig cfg;
    cfg.cls = cls;
    cfg.threads = threads;
    const npb::RunResult r = npb::run_cg(cfg);
    std::printf("%-6s %8ld %8d %10.1f %14.10f %10.2fs  %s\n", npb::to_string(cls),
                p.n, p.nonzer, p.shift, r.checksums[0], r.seconds,
                r.verified ? "" : "VERIFICATION FAILED");
  }

  // The paper's JVM ran all of CG's threads on 1-2 POSIX threads until each
  // had shown real work; priming the workers ("warm-up") fixed placement.
  // The knob survives in TeamOptions:
  npb::RunConfig cfg;
  cfg.cls = npb::ProblemClass::S;
  cfg.threads = threads;
  cfg.warmup_spins = 1000000;
  const npb::RunResult warmed = npb::run_cg(cfg);
  std::printf("\nwith the paper's warm-up fix (1e6 spins/worker): zeta %.10f, %.2fs\n",
              warmed.checksums[0], warmed.seconds);
  return 0;
}
