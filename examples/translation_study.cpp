// The section 3 translation study as a library consumer would run it:
// measure the basic CFD operations under each translation option (linearized
// vs dimension-preserving arrays, native vs java mode) and print the
// slowdown matrix that led NPB3.0-JAV to linearize everything.
//
//   ./translation_study [n1 n2 n3]

#include <cstdio>
#include <cstdlib>

#include "cfdops/cfdops.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  npb::CfdConfig base;
  if (argc > 3) {
    base.n1 = std::atol(argv[1]);
    base.n2 = std::atol(argv[2]);
    base.n3 = std::atol(argv[3]);
  } else {
    base.n1 = 41;  // quarter-size default so the example runs in seconds
    base.n2 = 41;
    base.n3 = 50;
  }
  base.reps = 5;

  constexpr npb::CfdOp kOps[] = {
      npb::CfdOp::Assignment, npb::CfdOp::FirstOrderStencil,
      npb::CfdOp::SecondOrderStencil, npb::CfdOp::MatVec, npb::CfdOp::ReductionSum};

  npb::Table t("Fortran-to-Java translation options: seconds (slowdown vs f77)");
  t.set_header({"Operation", "f77", "Java linearized", "Java dimensioned",
                "dim/lin"});
  for (const npb::CfdOp op : kOps) {
    npb::CfdConfig c = base;
    c.mode = npb::Mode::Native;
    c.shape = npb::ArrayShape::Linearized;
    const double f77 = npb::run_cfd_op(op, c).seconds;
    c.mode = npb::Mode::Java;
    const double lin = npb::run_cfd_op(op, c).seconds;
    c.shape = npb::ArrayShape::Dimensioned;
    const double md = npb::run_cfd_op(op, c).seconds;

    char lin_cell[48], md_cell[48], ratio[16];
    std::snprintf(lin_cell, sizeof lin_cell, "%.3f (%.1fx)", lin, lin / f77);
    std::snprintf(md_cell, sizeof md_cell, "%.3f (%.1fx)", md, md / f77);
    std::snprintf(ratio, sizeof ratio, "%.2f", md / lin);
    t.add_row({npb::to_string(op), npb::Table::cell(f77, 3), lin_cell, md_cell, ratio});
  }
  std::fputs(t.render().c_str(), stdout);
  std::puts("\nThe paper measured the dimension-preserving version 2.3-4.5x slower\n"
            "than the linearized one (Origin2000/E10000, Java 1.1.x), settling the\n"
            "translation on linearized arrays.");
  return 0;
}
