// Emits the frozen-reference table for src/common/reference.cpp.
//
// Runs every registered benchmark serially in native mode for the requested
// classes and prints C++ initializer lines to paste at the
// <<GENERATED-REFERENCES>> marker.  See DESIGN.md section 5 for why the
// references are self-calibrated.
//
// Usage: gen_reference [classes]   e.g.  gen_reference SWA

#include <cstdio>
#include <string>

#include "npb/registry.hpp"

int main(int argc, char** argv) {
  const std::string classes = argc > 1 ? argv[1] : "SW";
  for (const auto& info : npb::suite()) {
    for (char cc : classes) {
      const auto cls = npb::parse_class(std::string_view(&cc, 1));
      if (!cls) {
        std::fprintf(stderr, "unknown class '%c'\n", cc);
        return 1;
      }
      npb::RunConfig cfg;
      cfg.cls = *cls;
      cfg.mode = npb::Mode::Native;
      cfg.threads = 0;
      const npb::RunResult r = info.fn(cfg);
      if (!r.verified) {
        std::fprintf(stderr, "WARNING: %s.%s intrinsic verification failed:\n%s\n",
                     info.name, npb::to_string(*cls), r.verify_detail.c_str());
      }
      std::printf("      {{\"%s\", ProblemClass::%s},\n       {", info.name,
                  npb::to_string(*cls));
      for (std::size_t i = 0; i < r.checksums.size(); ++i)
        std::printf("%s%.17e", i ? ",\n        " : "", r.checksums[i]);
      std::printf("}},\n");
      std::fflush(stdout);
      std::fprintf(stderr, "%s.%s done in %.2fs (%s)\n", info.name,
                   npb::to_string(*cls), r.seconds,
                   r.verified ? "intrinsics ok" : "INTRINSICS FAILED");
    }
  }
  return 0;
}
