// Command-line suite driver (the analogue of NPB's run scripts): runs any
// benchmark at any configuration and prints a paper-style result block.
//
//   npbrun <benchmark|all> [--class=S] [--mode=native|java|vec] [--threads=N]
//          [--barrier=condvar|spin] [--schedule=static|dynamic[,C]|guided[,M]]
//          [--fused=on|off] [--mem-align=BYTES] [--first-touch] [--huge-pages]
//          [--fault-spec=SITE:KIND:STEP:RANK:SEED[:persist]] (repeatable)
//          [--watchdog-ms=N] [--max-retries=N] [--backoff-ms=N] [--no-degrade]
//          [--warmup] [--verbose]
//          [--obs-report=FILE]   (JSON, or CSV when FILE ends in .csv)
//
// Exit status is non-zero if any run fails verification, so the tool can
// anchor CI jobs.  Every flag value is validated strictly — a malformed
// value ('--fused=maybe', '--threads=two', a bad --fault-spec) is a usage
// error (exit 2), never a silent default.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fault/options.hpp"
#include "mem/mem.hpp"
#include "npb/registry.hpp"
#include "obs/report.hpp"

namespace {

void usage() {
  std::fputs(
      "usage: npbrun <benchmark|all> [--class=S|W|A|B|C] [--mode=native|java|vec]\n"
      "              [--threads=N] [--barrier=condvar|spin] [--warmup] [--verbose]\n"
      "              [--schedule=static|dynamic[,CHUNK]|guided[,MIN_CHUNK]]\n"
      "              [--fused=on|off] [--mem-align=BYTES] [--first-touch]\n"
      "              [--huge-pages] [--fault-spec=SPEC] [--watchdog-ms=N]\n"
      "              [--max-retries=N] [--backoff-ms=N] [--no-degrade]\n"
      "              [--obs-report=FILE]\n"
      "--mem-align takes a power of two (K/M suffixes allowed); --first-touch\n"
      "initializes large arrays on the worker team with the compute schedule;\n"
      "--huge-pages requests 2 MiB pages for buffers that large (Linux hint).\n"
      "--schedule picks the loop schedule for CG/IS/MG/EP threaded loops\n"
      "(pseudo-apps keep static slabs); dynamic/guided default CHUNK to\n"
      "n/(16*threads) and MIN_CHUNK to 1.\n"
      "--fused=on (default) runs each time step as one fused SPMD region;\n"
      "--fused=off restores one fork/join per parallel loop (checksums are\n"
      "bit-identical either way for a fixed schedule and thread count).\n"
      "--fault-spec injects a deterministic fault (repeatable); SPEC is\n"
      "SITE:KIND:STEP:RANK:SEED[:persist] with SITE one of\n"
      "barrier|region|collective|queue|reduce|alloc|*, KIND one of\n"
      "throw|delay(MS)|nan-poison|alloc-fail, STEP/RANK a number or *, and\n"
      "SEED the 0-based crossing of the site the fault fires on.  Recovery:\n"
      "--max-retries per-step retries from checkpoint (default 3) with\n"
      "--backoff-ms linear backoff (default 1), then team-shrink degradation\n"
      "unless --no-degrade.  --watchdog-ms aborts a barrier stuck longer than\n"
      "N ms so the step retries instead of hanging.\n"
      "benchmarks:",
      stderr);
  for (const auto& b : npb::suite()) std::fprintf(stderr, " %s", b.name);
  std::fputs("\n", stderr);
}

/// Strict non-negative integer parse for flag values: digits only, bounded;
/// atoi-style silent zeros ('--threads=two' -> 0) are rejected instead.
bool parse_flag_int(const char* s, int& out) {
  if (*s == '\0' || std::strlen(s) > 9) return false;
  int v = 0;
  for (; *s != '\0'; ++s) {
    if (*s < '0' || *s > '9') return false;
    v = v * 10 + (*s - '0');
  }
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string which = argv[1];
  npb::RunConfig cfg;
  bool verbose = false;
  std::string obs_report;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--class=", 8) == 0) {
      const auto c = npb::parse_class(a + 8);
      if (!c) {
        std::fprintf(stderr, "bad class '%s'\n", a + 8);
        return 2;
      }
      cfg.cls = *c;
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      const auto m = npb::parse_mode(a + 7);
      if (!m) {
        std::fprintf(stderr, "bad mode '%s' (want native, java or vec)\n",
                     a + 7);
        return 2;
      }
      cfg.mode = *m;
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      if (!parse_flag_int(a + 10, cfg.threads)) {
        std::fprintf(stderr, "bad thread count '%s' (want a number >= 0)\n",
                     a + 10);
        return 2;
      }
    } else if (std::strcmp(a, "--barrier=spin") == 0) {
      cfg.barrier = npb::BarrierKind::SpinSense;
    } else if (std::strcmp(a, "--barrier=condvar") == 0) {
      cfg.barrier = npb::BarrierKind::CondVar;
    } else if (std::strncmp(a, "--schedule=", 11) == 0) {
      const auto s = npb::parse_schedule(a + 11);
      if (!s) {
        std::fprintf(stderr, "bad schedule '%s'\n", a + 11);
        return 2;
      }
      cfg.schedule = *s;
    } else if (std::strncmp(a, "--fused=", 8) == 0) {
      if (std::strcmp(a + 8, "on") == 0) {
        cfg.fused = true;
      } else if (std::strcmp(a + 8, "off") == 0) {
        cfg.fused = false;
      } else {
        std::fprintf(stderr, "bad fused value '%s' (want on or off)\n", a + 8);
        return 2;
      }
    } else if (std::strncmp(a, "--fault-spec=", 13) == 0) {
      const auto spec = npb::fault::parse_fault_spec(a + 13);
      if (!spec) {
        std::fprintf(stderr,
                     "bad fault spec '%s'\n"
                     "(want SITE:KIND:STEP:RANK:SEED[:persist], e.g. "
                     "region:throw:3:1:0 or barrier:delay(50):*:0:2;\n"
                     " nan-poison requires site reduce, alloc-fail requires "
                     "site alloc)\n",
                     a + 13);
        return 2;
      }
      cfg.fault.specs.push_back(*spec);
    } else if (std::strncmp(a, "--watchdog-ms=", 14) == 0) {
      int v = 0;
      if (!parse_flag_int(a + 14, v)) {
        std::fprintf(stderr, "bad watchdog timeout '%s' (want ms >= 0)\n",
                     a + 14);
        return 2;
      }
      cfg.fault.watchdog_ms = v;
    } else if (std::strncmp(a, "--max-retries=", 14) == 0) {
      if (!parse_flag_int(a + 14, cfg.fault.max_retries)) {
        std::fprintf(stderr, "bad retry count '%s' (want a number >= 0)\n",
                     a + 14);
        return 2;
      }
    } else if (std::strncmp(a, "--backoff-ms=", 13) == 0) {
      if (!parse_flag_int(a + 13, cfg.fault.backoff_ms)) {
        std::fprintf(stderr, "bad backoff '%s' (want ms >= 0)\n", a + 13);
        return 2;
      }
    } else if (std::strcmp(a, "--no-degrade") == 0) {
      cfg.fault.allow_degraded = false;
    } else if (std::strncmp(a, "--mem-align=", 12) == 0) {
      const auto al = npb::mem::parse_alignment(a + 12);
      if (!al) {
        std::fprintf(stderr, "bad alignment '%s' (want a power of two)\n", a + 12);
        return 2;
      }
      cfg.mem.alignment = *al;
    } else if (std::strcmp(a, "--first-touch") == 0) {
      cfg.mem.placement = npb::mem::Placement::FirstTouch;
    } else if (std::strcmp(a, "--huge-pages") == 0) {
      cfg.mem.huge_pages = true;
    } else if (std::strcmp(a, "--warmup") == 0) {
      cfg.warmup_spins = 1000000;
    } else if (std::strcmp(a, "--verbose") == 0) {
      verbose = true;
    } else if (std::strncmp(a, "--obs-report=", 13) == 0) {
      obs_report = a + 13;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", a);
      usage();
      return 2;
    }
  }

  std::vector<const npb::BenchmarkInfo*> todo;
  if (which == "all" || which == "ALL") {
    for (const auto& b : npb::suite()) todo.push_back(&b);
  } else {
    for (const auto& b : npb::suite())
      if (npb::find_benchmark(which) == b.fn) todo.push_back(&b);
    if (todo.empty()) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", which.c_str());
      usage();
      return 2;
    }
  }

  // One arena per invocation: "all" runs reuse same-shape buffers across
  // benchmarks instead of round-tripping through the OS allocator.
  npb::mem::Arena arena;
  const npb::mem::ScopedArena arena_scope(&arena);

  npb::obs::ObsReport report;
  int failures = 0;
  for (const auto* b : todo) {
    const npb::RunResult r = obs_report.empty()
                                 ? b->fn(cfg)
                                 : npb::run_instrumented(b->fn, cfg);
    if (!obs_report.empty())
      report.add_run(r.name, npb::to_string(r.cls), npb::to_string(r.mode),
                     r.threads, r.seconds, r.obs);
    std::printf("%-3s class=%s mode=%-6s threads=%-2d  %8.3fs  %10.1f Mop/s  %s\n",
                r.name.c_str(), npb::to_string(r.cls), npb::to_string(r.mode),
                r.threads, r.seconds, r.mops,
                r.verified ? "VERIFICATION SUCCESSFUL" : "VERIFICATION FAILED");
    if (verbose || !r.verified) std::fputs(r.verify_detail.c_str(), stdout);
    if (!r.verified) ++failures;
  }
  if (!obs_report.empty() && report.write(obs_report))
    std::fprintf(stderr, "obs report (%zu runs) -> %s\n", report.size(),
                 obs_report.c_str());
  return failures == 0 ? 0 : 1;
}
