// Command-line suite driver (the analogue of NPB's run scripts): runs any
// benchmark at any configuration and prints a paper-style result block, or —
// with --serve — runs a stream of newline-delimited JSON job specs
// concurrently on the pooled team runtime and emits a service-level JSON.
//
// Argument parsing lives in src/svc/cli.{hpp,cpp} (so the test suite can
// fuzz it in-process); this file is the thin I/O shell.  Exit status follows
// the taxonomy in svc/cli.hpp: 0 all runs verified, 1 a run or job failed
// verification, 2 malformed argument or job spec (strictly validated, never
// a silent default), 3 a run could not be carried out or recovered, 4
// interrupted by SIGINT/SIGTERM at a step boundary with the final
// checkpoint and a partial obs report flushed (resumable with --resume).

#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "fault/retry.hpp"
#include "irr/irr.hpp"
#include "mem/mem.hpp"
#include "msg/msg_suite.hpp"
#include "npb/registry.hpp"
#include "obs/report.hpp"
#include "svc/cli.hpp"
#include "svc/report.hpp"
#include "svc/scheduler.hpp"

namespace {

// SIGINT/SIGTERM ask the step runner for a clean stop (final checkpoint,
// partial obs report, exit 4).  The handler then restores the default
// disposition, so a second signal kills immediately — the escape hatch when
// a step is wedged.
extern "C" void on_interrupt_signal(int sig) {
  npb::ckpt::request_interrupt();
  std::signal(sig, SIG_DFL);
}

void usage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
  std::fputs(npb::svc::usage_text().c_str(), stderr);
  std::fputs("benchmarks:", stderr);
  for (const auto& b : npb::suite()) std::fprintf(stderr, " %s", b.name);
  std::fputs("\nirregular workloads (run by name; excluded from \"all\"):",
             stderr);
  for (const auto& b : npb::irr_suite()) std::fprintf(stderr, " %s", b.name);
  std::fputs("\n", stderr);
}

bool read_all(std::FILE* f, std::string& out) {
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  return std::ferror(f) == 0;
}

int serve(const npb::svc::CliOptions& opts) {
  std::string text;
  if (opts.serve_input.empty()) {
    if (!read_all(stdin, text)) {
      std::fputs("error reading job specs from stdin\n", stderr);
      return 2;
    }
  } else {
    std::FILE* f = std::fopen(opts.serve_input.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open job-spec file '%s'\n",
                   opts.serve_input.c_str());
      return 2;
    }
    const bool ok = read_all(f, text);
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "error reading job-spec file '%s'\n",
                   opts.serve_input.c_str());
      return 2;
    }
  }

  // All-or-nothing parse before any job runs: a malformed line must be a
  // usage error, never a half-run batch.
  std::string error;
  const auto specs = npb::svc::parse_job_stream(text, &error);
  if (!specs) {
    std::fprintf(stderr, "bad job spec: %s\n", error.c_str());
    return 2;
  }

  npb::svc::SchedulerOptions sched_opts;
  sched_opts.pool_widths = opts.pool_widths;
  sched_opts.queue_capacity = opts.queue_capacity;
  npb::svc::JobScheduler scheduler(sched_opts);
  for (const npb::svc::JobSpec& spec : *specs) scheduler.submit_wait(spec);
  const std::vector<npb::svc::JobOutcome> outcomes = scheduler.drain();

  int failures = 0;
  for (const auto& out : outcomes) {
    const char* status = out.completed
                             ? (out.verified ? "VERIFICATION SUCCESSFUL"
                                             : "VERIFICATION FAILED")
                             : "JOB FAILED";
    std::printf(
        "%-12s %-3s class=%s mode=%-6s threads=%-2d  queue %7.3fs  run "
        "%7.3fs  %s\n",
        out.spec.id.c_str(), out.spec.benchmark.c_str(),
        npb::to_string(out.spec.cfg.cls), npb::to_string(out.spec.cfg.mode),
        out.spec.cfg.threads, out.queue_seconds, out.run_seconds, status);
    if (!out.error.empty()) std::printf("  error: %s\n", out.error.c_str());
    if (out.degraded_width > 0)
      std::printf("  degraded to width %d after %llu injected faults\n",
                  out.degraded_width,
                  static_cast<unsigned long long>(out.faults_injected));
    if (!out.completed || !out.verified) ++failures;
  }

  const npb::json::Value doc =
      npb::svc::service_json(outcomes, scheduler.stats());
  if (opts.service_report.empty()) {
    std::printf("%s\n", doc.dump().c_str());
  } else if (npb::svc::write_json(doc, opts.service_report)) {
    std::fprintf(stderr, "service report (%zu jobs) -> %s\n", outcomes.size(),
                 opts.service_report.c_str());
  } else {
    std::fprintf(stderr, "cannot write service report '%s'\n",
                 opts.service_report.c_str());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}

int run_benchmarks(const npb::svc::CliOptions& opts) {
  // msg mode dispatches through its own registry (EP/CG/FT/IS only; the CLI
  // has already rejected anything else with exit 2).
  const bool msg_mode = opts.cfg.mode == npb::Mode::Msg;
  const auto& table = msg_mode ? npb::msg::msg_suite() : npb::suite();
  const auto find = msg_mode ? &npb::msg::find_msg_benchmark : &npb::find_benchmark;
  std::vector<const npb::BenchmarkInfo*> todo;
  if (opts.which == "all" || opts.which == "ALL") {
    // "all" stays the classic NPB sweep; irregular workloads run by name.
    for (const auto& b : table) todo.push_back(&b);
  } else {
    for (const auto& b : table)
      if (find(opts.which) == b.fn) todo.push_back(&b);
    if (todo.empty() && !msg_mode)
      for (const auto& b : npb::irr_suite())
        if (npb::find_irr_benchmark(opts.which) == b.fn) todo.push_back(&b);
  }

  // One arena per invocation: "all" runs reuse same-shape buffers across
  // benchmarks instead of round-tripping through the OS allocator.
  npb::mem::Arena arena;
  const npb::mem::ScopedArena arena_scope(&arena);

  std::signal(SIGINT, &on_interrupt_signal);
  std::signal(SIGTERM, &on_interrupt_signal);
  npb::ckpt::clear_interrupt();

  // Adds the interrupted/failed benchmark's obs counters (ckpt/saved and
  // friends) to the report so a partial report still explains what happened.
  const auto add_partial = [&](npb::obs::ObsReport& report,
                               const npb::BenchmarkInfo* b) {
    if (opts.obs_report.empty()) return;
    report.add_run(b->name, npb::to_string(opts.cfg.cls),
                   npb::to_string(opts.cfg.mode), opts.cfg.threads, 0.0,
                   npb::obs::ObsRegistry::instance().snapshot(), 0, {});
  };

  npb::obs::ObsReport report;
  int failures = 0;
  int exit_code = npb::svc::kExitOk;
  for (const auto* b : todo) {
    try {
      const npb::RunResult r = opts.obs_report.empty()
                                   ? b->fn(opts.cfg)
                                   : npb::run_instrumented(b->fn, opts.cfg);
      if (!opts.obs_report.empty())
        report.add_run(r.name, npb::to_string(r.cls), npb::to_string(r.mode),
                       r.threads, r.seconds, r.obs, r.procs, r.shards);
      char procs_buf[32] = "";
      if (r.procs > 0)
        std::snprintf(procs_buf, sizeof(procs_buf), " procs=%d", r.procs);
      std::printf(
          "%-3s class=%s mode=%-6s threads=%-2d%s  %8.3fs  %10.1f Mop/s  %s\n",
          r.name.c_str(), npb::to_string(r.cls), npb::to_string(r.mode),
          r.threads, procs_buf, r.seconds, r.mops,
          r.verified ? "VERIFICATION SUCCESSFUL" : "VERIFICATION FAILED");
      if (opts.verbose || !r.verified)
        std::fputs(r.verify_detail.c_str(), stdout);
      if (!r.verified) ++failures;
    } catch (const npb::ckpt::Interrupted& e) {
      std::fprintf(stderr, "%s: %s\n", b->name, e.what());
      add_partial(report, b);
      exit_code = npb::svc::kExitInterrupted;
      break;
    } catch (const npb::fault::RecoveryExhausted& e) {
      std::fprintf(stderr, "%s: recovery exhausted: %s\n", b->name, e.what());
      add_partial(report, b);
      exit_code = npb::svc::kExitUnrecoverable;
      break;
    } catch (const npb::ckpt::CkptError& e) {
      std::fprintf(stderr, "%s: checkpoint error: %s\n", b->name, e.what());
      add_partial(report, b);
      exit_code = npb::svc::kExitUnrecoverable;
      break;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", b->name, e.what());
      add_partial(report, b);
      exit_code = npb::svc::kExitUnrecoverable;
      break;
    }
  }
  if (!opts.obs_report.empty() && report.write(opts.obs_report))
    std::fprintf(stderr, "obs report (%zu runs%s) -> %s\n", report.size(),
                 exit_code == npb::svc::kExitOk ? "" : ", partial",
                 opts.obs_report.c_str());
  if (exit_code != npb::svc::kExitOk) return exit_code;
  return failures == 0 ? npb::svc::kExitOk : npb::svc::kExitVerifyFailed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto opts = npb::svc::parse_npbrun_args(argc, argv, &error);
  if (!opts) {
    usage(error);
    return npb::svc::kExitUsage;
  }
  return opts->action == npb::svc::CliOptions::Action::Serve
             ? serve(*opts)
             : run_benchmarks(*opts);
}
